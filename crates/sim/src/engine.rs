//! The discrete time-step simulation engine.
//!
//! For every sub-swarm the engine sweeps the trace in Δτ windows, skipping
//! idle gaps, and delegates per-window upload assignment to the configured
//! matcher. Sub-swarms are independent, so the engine shards them across
//! std-scoped worker threads; results are merged in deterministic key
//! order and the random matcher is seeded per swarm, so the report is
//! bit-identical regardless of thread count.
//!
//! The engine replays the **columnar** [`SessionStore`]: grouping reads the
//! content/ISP/bitrate columns, each sub-swarm drives the store's sliding
//! active-window cursor over the start-sorted columns, and only the columns
//! a pass touches move through the cache. [`Simulator::run`] columnarises a
//! row-record [`Trace`] on the fly; [`Simulator::run_store`] replays a
//! prebuilt (e.g. sweep-shared) store without that conversion.

use consume_local_swarm::matching::MatchOutcome;
use consume_local_swarm::{Peer, SwarmKey};
use consume_local_trace::{ContentId, SessionStore, SimTime, Trace};

use crate::config::{SimConfig, SimConfigError};
use crate::ledger::ByteLedger;
use crate::report::{DailyIspCell, SimReport, SwarmReport, UserTraffic};

/// The simulator: a configured engine, reusable across traces.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`SimConfig::validate`]);
    /// use [`Simulator::try_new`] to handle invalid configurations as typed
    /// errors instead.
    pub fn new(config: SimConfig) -> Self {
        match Self::try_new(config) {
            Ok(sim) => sim,
            Err(e) => panic!("invalid simulator config: {e}"),
        }
    }

    /// Creates a simulator, rejecting an invalid configuration as a typed
    /// [`SimConfigError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint (see [`SimConfig::validate`]).
    pub fn try_new(config: SimConfig) -> Result<Self, SimConfigError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the simulation over a trace and returns the full report.
    ///
    /// Columnarises the trace and delegates to [`Simulator::run_store`]; a
    /// caller replaying the same trace under many configurations (the sweep
    /// runner) should build the [`SessionStore`] once and share it instead.
    pub fn run(&self, trace: &Trace) -> SimReport {
        self.run_store(&SessionStore::from_trace(trace))
    }

    /// Runs the simulation over a prebuilt columnar session store.
    pub fn run_store(&self, store: &SessionStore) -> SimReport {
        self.run_store_with(store, Self::simulate_swarm)
    }

    /// The reference row-based engine: identical pipeline, but the per-swarm
    /// window loop materialises [`ActiveSession`] rows instead of driving
    /// the columnar [`ActiveSet`]. Kept only as the oracle the SoA fast path
    /// is property-tested against.
    #[cfg(test)]
    fn run_store_rows(&self, store: &SessionStore) -> SimReport {
        self.run_store_with(store, Self::simulate_swarm_rows)
    }

    /// The engine pipeline around a pluggable per-swarm simulation:
    /// grouping, the parallel per-swarm fan-out and the deterministic merge
    /// are identical for the production SoA path and the test-only row path.
    fn run_store_with(
        &self,
        store: &SessionStore,
        simulate: impl Fn(&Self, SwarmKey, &[u32], &SessionStore) -> SwarmOutput + Sync,
    ) -> SimReport {
        // 1. Group sessions into sub-swarms with one stable sort instead of
        //    a `HashMap<SwarmKey, Vec<u32>>` rebuild: ties keep the trace's
        //    start order, and swarms come out already key-ordered. Keys are
        //    assembled straight from the content/ISP/device columns.
        let content = store.content();
        let isp = store.isp();
        let mut keyed_sessions: Vec<(SwarmKey, u32)> = (0..store.len())
            .map(|i| {
                let key = self.config.policy.key_parts(
                    ContentId(content[i]),
                    isp[i],
                    store.bitrate_class(i),
                );
                (key, i as u32)
            })
            .collect();
        keyed_sessions.sort_by_key(|&(key, _)| key);
        let indices: Vec<u32> = keyed_sessions.iter().map(|&(_, i)| i).collect();
        let mut keyed: Vec<(SwarmKey, std::ops::Range<usize>)> = Vec::new();
        let mut start = 0usize;
        while start < keyed_sessions.len() {
            let key = keyed_sessions[start].0;
            let mut end = start + 1;
            while end < keyed_sessions.len() && keyed_sessions[end].0 == key {
                end += 1;
            }
            keyed.push((key, start..end));
            start = end;
        }

        // 2. Simulate swarms (work-stealing across threads; each swarm's
        //    result is placed at its key-ordered slot).
        let n = keyed.len();
        let outputs = crate::par::parallel_map(n, self.config.threads, |i| {
            let (key, range) = &keyed[i];
            simulate(self, *key, &indices[range.clone()], store)
        });

        // 3. Merge deterministically in key order. Day × ISP cells are
        //    collected flat and merged with one sort — no hash map rebuild.
        let horizon = store.horizon_secs();
        let total_windows = horizon / self.config.window_secs;
        let mut swarms = Vec::with_capacity(n);
        let mut users = vec![UserTraffic::default(); store.population_len()];
        let mut daily_cells: Vec<(u32, Option<consume_local_topology::IspId>, ByteLedger)> =
            Vec::new();
        let mut total = ByteLedger::new();
        for (out, (key, range)) in outputs.into_iter().zip(&keyed) {
            total.merge(&out.ledger);
            for (day, ledger) in &out.daily {
                daily_cells.push((*day, key.isp, *ledger));
            }
            for &(user, watched, uploaded) in &out.users {
                let t = &mut users[user as usize];
                t.watched_bytes += watched;
                t.uploaded_bytes += uploaded;
            }
            let daily_points = out
                .daily
                .iter()
                .map(|(day, ledger)| crate::report::SwarmDay {
                    day: *day,
                    capacity: effective_capacity(ledger),
                    demand_bytes: ledger.demand_bytes,
                })
                .collect();
            swarms.push(SwarmReport {
                key: *key,
                ledger: out.ledger,
                sessions: range.len() as u64,
                capacity: effective_capacity(&out.ledger),
                time_avg_capacity: out.ledger.measured_capacity(total_windows),
                upload_ratio: out.upload_ratio,
                daily: daily_points,
            });
        }
        daily_cells.sort_by_key(|&(day, isp, _)| (day, isp));
        let mut daily: Vec<DailyIspCell> = Vec::new();
        for (day, isp, ledger) in daily_cells {
            match daily.last_mut() {
                Some(cell) if cell.day == day && cell.isp == isp => cell.ledger.merge(&ledger),
                _ => daily.push(DailyIspCell { day, isp, ledger }),
            }
        }

        SimReport {
            horizon_secs: horizon,
            window_secs: self.config.window_secs,
            swarms,
            users,
            daily,
            total,
        }
    }

    /// Simulates one sub-swarm over its sessions (already start-ordered).
    ///
    /// The active set is fully columnar ([`ActiveSet`]): its peer/need/budget
    /// columns feed [`Matcher::match_window_into`] as slices directly, so a
    /// steady-state window performs **zero** allocation and zero copying of
    /// window inputs — the per-window work is the matcher itself, the user
    /// accumulation and the ledger. Membership-dependent totals (demand,
    /// preload, the CDN-ineligible remainder) are cached between membership
    /// changes, and the retire scan is skipped entirely while every active
    /// session's end lies beyond the boundary (`min_end` tracking).
    fn simulate_swarm(&self, key: SwarmKey, indices: &[u32], store: &SessionStore) -> SwarmOutput {
        let dt = self.config.window_secs;
        // Hot columns as local slices: one pointer load each at admission
        // time instead of a walk through the store on every field.
        let starts_col = store.start_secs();
        let durations_col = store.duration_secs();
        let users_col = store.user();
        let devices_col = store.device();
        let isps_col = store.isp();
        let locations_col = store.location();
        let mut matcher = self
            .config
            .matcher
            .build(swarm_seed(self.config.seed, &key));

        let mut out = SwarmOutput::default();

        // Dense user slots: traffic accumulates in a flat vector indexed by
        // the user's rank among this swarm's (sorted, distinct) users, not in
        // a per-window-updated `HashMap<u32, _>`.
        let mut swarm_users: Vec<u32> = indices.iter().map(|&i| users_col[i as usize]).collect();
        swarm_users.sort_unstable();
        swarm_users.dedup();
        let mut user_acc: Vec<(u64, u64)> = vec![(0, 0); swarm_users.len()];

        // Representative ratio for the report (uniform within bitrate-split
        // swarms; a demand-weighted mix otherwise).
        let first_bitrate = devices_col[indices[0] as usize].bitrate_bps();
        out.upload_ratio = self.config.upload.ratio_for(first_bitrate).min(1.0);

        let preload_f = self.config.preload_fraction;
        let cached = self
            .config
            .edge_cache
            .is_some_and(|c| key.content.0 < c.top_items);

        let mut active = ActiveSet::default();
        // The store's sliding cursor admits each session exactly once as the
        // window boundary crosses its start.
        let mut cursor = store.cursor(indices);
        // First window boundary at which the earliest session is active.
        let mut t = SimTime(align_up(starts_col[indices[0] as usize], dt));
        let horizon = SimTime(store.horizon_secs());

        let mut outcome = MatchOutcome::default();
        // Membership-dependent window totals, recomputed only when the
        // active set changes (integer sums in index order, so they equal a
        // fresh per-window recomputation exactly).
        let mut sums_stale = true;
        let mut preload_total = 0u64;
        let mut swarm_demand = 0u64;
        let mut ineligible = 0u64;

        while t < horizon {
            sums_stale |= active.retire_ended(t.as_secs());
            let len_before_admit = active.len();
            cursor.admit_until(t.as_secs(), |i| {
                let end = starts_col[i] + u64::from(durations_col[i]);
                if end > t.as_secs() {
                    // Per-session window quantities are fixed for the whole
                    // session (bitrate and Δτ do not change), so they are
                    // computed once here instead of once per window. A
                    // preloaded fraction of every session's bytes bypasses
                    // the swarm (§VI preloading extension; 0 by default).
                    let bitrate = devices_col[i].bitrate_bps();
                    let user = users_col[i];
                    let full_demand = u64::from(bitrate) * dt / 8;
                    let preload = (full_demand as f64 * preload_f) as u64;
                    let demand = full_demand - preload;
                    // Non-participating users never upload (NetSession-style
                    // partial participation); their own peer-receipt cap is
                    // based on the swarm's typical uplink, not their zero
                    // one.
                    let nominal_budget = self.config.upload.budget_bytes(bitrate, dt);
                    let budget = if participates(user, self.config.participation_rate) {
                        nominal_budget
                    } else {
                        0
                    };
                    let user_slot = swarm_users
                        .binary_search(&user)
                        .expect("swarm_users indexes every session user")
                        as u32;
                    active.push(
                        end,
                        user_slot,
                        Peer {
                            isp: isps_col[i],
                            location: locations_col[i],
                        },
                        full_demand,
                        demand,
                        preload,
                        demand.min(nominal_budget),
                        budget,
                    );
                }
            });
            sums_stale |= active.len() != len_before_admit;
            if active.is_empty() {
                let Some(next_start) = cursor.next_start_secs() else {
                    break;
                };
                // Jump to the first window boundary at which the next
                // session is active (align *up*: a boundary before its start
                // would never pick it up and loop forever).
                t = SimTime(align_up(next_start, dt).max(t.as_secs() + dt));
                continue;
            }

            // Solo fast path. A lone peer is its windows' fetcher, so until
            // the next membership event (its own end, the next admission or
            // the horizon) every window is identical and transfers nothing:
            // account the whole run in closed form — per-day ledger chunks,
            // one watched-bytes bump — and advance the matcher's
            // window-indexed state in bulk. Solo windows dominate tail
            // swarms (> 80 % of all windows at the medium preset), which is
            // what makes this jump, not the per-window micro-costs, the
            // engine's biggest lever.
            if active.len() == 1 {
                let mut upper = active.ends[0].min(horizon.as_secs());
                if let Some(next_start) = cursor.next_start_secs() {
                    // The joiner lands on the first boundary at or after its
                    // start; batch only the windows strictly before it.
                    upper = upper.min(align_up(next_start, dt));
                }
                let k = (upper - t.as_secs()).div_ceil(dt);
                debug_assert!(k >= 1, "the current window is always batchable");
                matcher.note_solo_windows(k);

                let full_demand = active.full_demands[0];
                let demand = active.demands[0];
                let preload = active.preloads[0];
                user_acc[active.user_slots[0] as usize].0 += full_demand * k;

                // Chunk the run by the day each window starts in (windows
                // straddling midnight belong to their start's day, exactly
                // as the per-window path assigns them).
                let spd = consume_local_trace::time::SECS_PER_DAY;
                let mut tw = t.as_secs();
                let mut remaining = k;
                while remaining > 0 {
                    let day = (tw / spd) as u32;
                    let day_end = (u64::from(day) + 1) * spd;
                    let in_day = ((day_end - tw).div_ceil(dt)).min(remaining);
                    let mut chunk_ledger = ByteLedger {
                        demand_bytes: full_demand * in_day,
                        server_bytes: if cached { 0 } else { demand * in_day },
                        peer_bytes_by_layer: [0; 3],
                        cache_bytes: if cached { full_demand * in_day } else { 0 },
                        preload_bytes: if cached { 0 } else { preload * in_day },
                        active_windows: in_day,
                        peer_windows: in_day,
                    };
                    debug_assert!(chunk_ledger.is_conserved(), "solo chunk must conserve");
                    out.ledger.merge(&chunk_ledger);
                    match out.daily.last_mut() {
                        Some((d, ledger)) if *d == day => ledger.merge(&chunk_ledger),
                        _ => out.daily.push((day, std::mem::take(&mut chunk_ledger))),
                    }
                    tw += in_day * dt;
                    remaining -= in_day;
                }
                t = SimTime(t.as_secs() + k * dt);
                continue;
            }

            // Peer 0 (earliest joiner — the columns preserve arrival order)
            // is the fresh fetcher. The CDN-side "ineligible" remainder
            // carries the fetcher's full in-swarm demand plus every peer's
            // demand − need. An unchanged membership also means an unchanged
            // peer sequence, which the matcher turns into a reused locality
            // grouping (no per-window sort in stable windows).
            let peers_unchanged = !sums_stale;
            if sums_stale {
                preload_total = active.preloads.iter().sum();
                swarm_demand = active.demands.iter().sum();
                let tail_needs: u64 = active.needs[1..].iter().sum();
                ineligible = swarm_demand - tail_needs;
                sums_stale = false;
            }
            matcher.match_window_into_hinted(
                &active.peers,
                &active.needs,
                &active.budgets,
                0,
                peers_unchanged,
                &mut outcome,
            );

            // Account the window. The CDN-side fallback carries the
            // ineligible remainder and the matcher's residual unmet needs;
            // with an edge cache holding this item, that fallback is served
            // at the exchange instead of the CDN.
            let demand_total = swarm_demand + preload_total;
            let fallback = ineligible + outcome.server_bytes;
            let (server_total, cache_total, preload_srv, preload_cache) = if cached {
                (0, fallback, 0, preload_total)
            } else {
                (fallback, 0, preload_total, 0)
            };

            let mut window_ledger = ByteLedger {
                demand_bytes: demand_total,
                server_bytes: server_total + preload_srv,
                peer_bytes_by_layer: outcome.peer_bytes_by_layer,
                cache_bytes: cache_total + preload_cache,
                preload_bytes: 0,
                active_windows: 1,
                peer_windows: active.len() as u64,
            };
            // Preload bytes are tracked in their own class when not cached.
            if !cached {
                window_ledger.server_bytes -= preload_srv;
                window_ledger.preload_bytes = preload_srv;
            }
            debug_assert!(window_ledger.is_conserved(), "window bytes must conserve");

            for (k, (&slot, &full_demand)) in active
                .user_slots
                .iter()
                .zip(&active.full_demands)
                .enumerate()
            {
                let acc = &mut user_acc[slot as usize];
                // Users watch their full demand (preloaded bytes included).
                acc.0 += full_demand;
                acc.1 += outcome.per_peer[k].uploaded;
            }

            out.ledger.merge(&window_ledger);
            let day = (t.as_secs() / consume_local_trace::time::SECS_PER_DAY) as u32;
            match out.daily.last_mut() {
                Some((d, ledger)) if *d == day => ledger.merge(&window_ledger),
                _ => {
                    // Ledger moved into the vec; reuse the window value.
                    out.daily.push((day, std::mem::take(&mut window_ledger)));
                }
            }

            t = t + dt;
        }

        // `swarm_users` is sorted, so the output is already user-ordered.
        // Users whose sessions never spanned a window boundary accumulated
        // nothing and are dropped, exactly as before the dense-slot rewrite.
        out.users = swarm_users
            .into_iter()
            .zip(user_acc)
            .filter(|&(_, acc)| acc != (0, 0))
            .map(|(u, (w, up))| (u, w, up))
            .collect();
        out
    }
}

/// The columnar active set of one sub-swarm: parallel per-session columns in
/// arrival order, with the `peers`/`needs`/`budgets` columns shaped exactly
/// as [`Matcher::match_window_into`] consumes them. Pushes append to every
/// column; retiring compacts all columns in lockstep (order-preserving, like
/// `Vec::retain`), and `min_end` lets a window skip the retire scan when no
/// active session can have ended yet.
#[derive(Debug)]
struct ActiveSet {
    /// Session end times in seconds.
    ends: Vec<u64>,
    /// Rank of each session's user among the swarm's sorted distinct users.
    user_slots: Vec<u32>,
    /// Matcher input: peer identities.
    peers: Vec<Peer>,
    /// Full per-window demand `β·Δτ/8` in bytes, preload included.
    full_demands: Vec<u64>,
    /// In-swarm per-window demand (full demand minus the preloaded part).
    demands: Vec<u64>,
    /// Per-window bytes served by predictive preloading.
    preloads: Vec<u64>,
    /// Matcher input: peer-receivable caps `min(demand, q·Δτ/8)`.
    needs: Vec<u64>,
    /// Matcher input: per-window upload budgets (0 for non-participants).
    budgets: Vec<u64>,
    /// Smallest entry of `ends` (`u64::MAX` when empty): windows with
    /// `t < min_end` cannot retire anything and skip the scan.
    min_end: u64,
}

impl Default for ActiveSet {
    fn default() -> Self {
        Self {
            ends: Vec::new(),
            user_slots: Vec::new(),
            peers: Vec::new(),
            full_demands: Vec::new(),
            demands: Vec::new(),
            preloads: Vec::new(),
            needs: Vec::new(),
            budgets: Vec::new(),
            min_end: u64::MAX,
        }
    }
}

impl ActiveSet {
    fn len(&self) -> usize {
        self.ends.len()
    }

    fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        end: u64,
        user_slot: u32,
        peer: Peer,
        full_demand: u64,
        demand: u64,
        preload: u64,
        need: u64,
        budget: u64,
    ) {
        self.ends.push(end);
        self.user_slots.push(user_slot);
        self.peers.push(peer);
        self.full_demands.push(full_demand);
        self.demands.push(demand);
        self.preloads.push(preload);
        self.needs.push(need);
        self.budgets.push(budget);
        self.min_end = self.min_end.min(end);
    }

    /// Drops every session with `end <= t`, preserving arrival order —
    /// exactly `retain(|a| a.end > t)` over the row shape. Returns whether
    /// the set changed; the no-op case is decided by one `min_end` compare.
    fn retire_ended(&mut self, t: u64) -> bool {
        if self.min_end > t {
            return false;
        }
        let mut w = 0usize;
        let mut min_end = u64::MAX;
        for r in 0..self.ends.len() {
            let end = self.ends[r];
            if end > t {
                if w != r {
                    self.ends[w] = end;
                    self.user_slots[w] = self.user_slots[r];
                    self.peers[w] = self.peers[r];
                    self.full_demands[w] = self.full_demands[r];
                    self.demands[w] = self.demands[r];
                    self.preloads[w] = self.preloads[r];
                    self.needs[w] = self.needs[r];
                    self.budgets[w] = self.budgets[r];
                }
                min_end = min_end.min(end);
                w += 1;
            }
        }
        self.ends.truncate(w);
        self.user_slots.truncate(w);
        self.peers.truncate(w);
        self.full_demands.truncate(w);
        self.demands.truncate(w);
        self.preloads.truncate(w);
        self.needs.truncate(w);
        self.budgets.truncate(w);
        self.min_end = min_end;
        true
    }
}

/// Window-aligned ceiling: the first window boundary at or after `secs`.
fn align_up(secs: u64, dt: u64) -> u64 {
    secs.div_ceil(dt) * dt
}

/// Deterministic participation membership: the same user participates (or
/// not) in every swarm, run and configuration with the same rate.
fn participates(user: u32, rate: f64) -> bool {
    if rate >= 1.0 {
        return true;
    }
    // splitmix64 of the user id → uniform in [0, 1).
    let mut x = u64::from(user).wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x as f64 / u64::MAX as f64) < rate
}

/// The ledger's effective M/M/∞ capacity: while-active mean occupancy
/// inverted through `L̄ = c/(1 − e^(−c))`.
fn effective_capacity(ledger: &ByteLedger) -> f64 {
    if ledger.active_windows == 0 {
        return 0.0;
    }
    let l_bar = ledger.peer_windows as f64 / ledger.active_windows as f64;
    consume_local_analytics::capacity_from_active_mean(l_bar)
}

/// Deterministic per-swarm seed for the (optionally random) matcher, so the
/// result does not depend on which worker thread picks the swarm up.
fn swarm_seed(base: u64, key: &SwarmKey) -> u64 {
    let mut x = base ^ (u64::from(key.content.0) << 1);
    if let Some(isp) = key.isp {
        x ^= (u64::from(isp.0) + 1) << 40;
    }
    if let Some(b) = key.bitrate {
        x ^= u64::from(b.bps()) << 16;
    }
    // splitmix64 finaliser
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[derive(Debug, Default)]
struct SwarmOutput {
    ledger: ByteLedger,
    daily: Vec<(u32, ByteLedger)>,
    users: Vec<(u32, u64, u64)>,
    upload_ratio: f64,
}

/// One active session with its per-window quantities precomputed at join
/// time (they are constant for the session's lifetime).
///
/// Test-only: the production window loop keeps these quantities as the
/// parallel columns of [`ActiveSet`]; this row shape survives solely for the
/// reference path ([`Simulator::run_store_rows`]) the SoA loop is
/// property-tested against.
#[cfg(test)]
#[derive(Debug, Clone, Copy)]
struct ActiveSession {
    end: SimTime,
    /// Rank of the session's user among the swarm's sorted distinct users.
    user_slot: u32,
    peer: Peer,
    /// Full per-window demand `β·Δτ/8` in bytes, preload included.
    full_demand: u64,
    /// In-swarm per-window demand (full demand minus the preloaded part).
    demand: u64,
    /// Per-window bytes served by predictive preloading.
    preload: u64,
    /// Peer-receivable cap `min(demand, q·Δτ/8)`.
    need: u64,
    /// Per-window upload budget (0 for non-participants).
    budget: u64,
}

#[cfg(test)]
impl Simulator {
    /// The pre-SoA row-based window loop, kept verbatim as the oracle for
    /// property tests: materialises [`ActiveSession`] rows and rebuilds the
    /// matcher's peer/need/budget inputs every window.
    fn simulate_swarm_rows(
        &self,
        key: SwarmKey,
        indices: &[u32],
        store: &SessionStore,
    ) -> SwarmOutput {
        let dt = self.config.window_secs;
        let starts_col = store.start_secs();
        let durations_col = store.duration_secs();
        let users_col = store.user();
        let devices_col = store.device();
        let isps_col = store.isp();
        let locations_col = store.location();
        let mut matcher = self
            .config
            .matcher
            .build(swarm_seed(self.config.seed, &key));

        let mut out = SwarmOutput::default();
        let mut swarm_users: Vec<u32> = indices.iter().map(|&i| users_col[i as usize]).collect();
        swarm_users.sort_unstable();
        swarm_users.dedup();
        let mut user_acc: Vec<(u64, u64)> = vec![(0, 0); swarm_users.len()];

        let first_bitrate = devices_col[indices[0] as usize].bitrate_bps();
        out.upload_ratio = self.config.upload.ratio_for(first_bitrate).min(1.0);

        let preload_f = self.config.preload_fraction;
        let cached = self
            .config
            .edge_cache
            .is_some_and(|c| key.content.0 < c.top_items);

        let mut active: Vec<ActiveSession> = Vec::new();
        let mut cursor = store.cursor(indices);
        let mut t = SimTime(align_up(starts_col[indices[0] as usize], dt));
        let horizon = SimTime(store.horizon_secs());

        let mut peers: Vec<Peer> = Vec::new();
        let mut needs: Vec<u64> = Vec::new();
        let mut budgets: Vec<u64> = Vec::new();
        let mut outcome = MatchOutcome::default();

        while t < horizon {
            active.retain(|a| a.end > t);
            cursor.admit_until(t.as_secs(), |i| {
                let end = SimTime(starts_col[i] + u64::from(durations_col[i]));
                if end > t {
                    let bitrate = devices_col[i].bitrate_bps();
                    let user = users_col[i];
                    let full_demand = u64::from(bitrate) * dt / 8;
                    let preload = (full_demand as f64 * preload_f) as u64;
                    let demand = full_demand - preload;
                    let nominal_budget = self.config.upload.budget_bytes(bitrate, dt);
                    let budget = if participates(user, self.config.participation_rate) {
                        nominal_budget
                    } else {
                        0
                    };
                    let user_slot = swarm_users
                        .binary_search(&user)
                        .expect("swarm_users indexes every session user")
                        as u32;
                    active.push(ActiveSession {
                        end,
                        user_slot,
                        peer: Peer {
                            isp: isps_col[i],
                            location: locations_col[i],
                        },
                        full_demand,
                        demand,
                        preload,
                        need: demand.min(nominal_budget),
                        budget,
                    });
                }
            });
            if active.is_empty() {
                let Some(next_start) = cursor.next_start_secs() else {
                    break;
                };
                t = SimTime(align_up(next_start, dt).max(t.as_secs() + dt));
                continue;
            }

            peers.clear();
            needs.clear();
            budgets.clear();
            let mut preload_total = 0u64;
            let mut swarm_demand = 0u64;
            let mut ineligible = 0u64;
            for (k, a) in active.iter().enumerate() {
                preload_total += a.preload;
                swarm_demand += a.demand;
                ineligible += if k == 0 { a.demand } else { a.demand - a.need };
                peers.push(a.peer);
                needs.push(a.need);
                budgets.push(a.budget);
            }
            matcher.match_window_into(&peers, &needs, &budgets, 0, &mut outcome);

            let demand_total = swarm_demand + preload_total;
            let fallback = ineligible + outcome.server_bytes;
            let (server_total, cache_total, preload_srv, preload_cache) = if cached {
                (0, fallback, 0, preload_total)
            } else {
                (fallback, 0, preload_total, 0)
            };

            let mut window_ledger = ByteLedger {
                demand_bytes: demand_total,
                server_bytes: server_total + preload_srv,
                peer_bytes_by_layer: outcome.peer_bytes_by_layer,
                cache_bytes: cache_total + preload_cache,
                preload_bytes: 0,
                active_windows: 1,
                peer_windows: active.len() as u64,
            };
            if !cached {
                window_ledger.server_bytes -= preload_srv;
                window_ledger.preload_bytes = preload_srv;
            }

            for (k, a) in active.iter().enumerate() {
                let acc = &mut user_acc[a.user_slot as usize];
                acc.0 += a.full_demand;
                acc.1 += outcome.per_peer[k].uploaded;
            }

            out.ledger.merge(&window_ledger);
            let day = (t.as_secs() / consume_local_trace::time::SECS_PER_DAY) as u32;
            match out.daily.last_mut() {
                Some((d, ledger)) if *d == day => ledger.merge(&window_ledger),
                _ => {
                    out.daily.push((day, std::mem::take(&mut window_ledger)));
                }
            }

            t = t + dt;
        }

        out.users = swarm_users
            .into_iter()
            .zip(user_acc)
            .filter(|&(_, acc)| acc != (0, 0))
            .map(|(u, (w, up))| (u, w, up))
            .collect();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consume_local_energy::EnergyParams;
    use consume_local_swarm::MatcherKind;
    use consume_local_topology::{ExchangeId, IspId, IspTopology};
    use consume_local_trace::device::DeviceClass;
    use consume_local_trace::{ContentId, SessionRecord, TraceConfig, TraceGenerator, UserId};

    fn tiny_trace() -> Trace {
        TraceGenerator::new(TraceConfig::london_sep2013().scaled(0.0003).unwrap(), 11)
            .generate()
            .unwrap()
    }

    /// A hand-built trace: two users, same ISP/exchange/bitrate, overlapping
    /// sessions on one item.
    fn pair_trace(offset_secs: u64) -> Trace {
        let base = TraceGenerator::new(TraceConfig::london_sep2013().scaled(0.0002).unwrap(), 3)
            .generate()
            .unwrap();
        let topo = IspTopology::london_table3().unwrap();
        let loc = topo.location_of(ExchangeId(5));
        let mk = |user: u32, start: u64| SessionRecord {
            user: UserId(user),
            content: ContentId(0),
            start: SimTime(start),
            duration_secs: 600,
            device: DeviceClass::Desktop,
            isp: IspId(0),
            location: loc,
        };
        Trace::from_parts(
            base.config().clone(),
            base.catalogue().clone(),
            base.population().clone(),
            vec![mk(0, 0), mk(1, offset_secs)],
        )
    }

    #[test]
    fn lone_viewer_gets_everything_from_server() {
        let trace = pair_trace(100_000); // sessions never overlap
        let report = Simulator::new(SimConfig::default()).run(&trace);
        assert_eq!(report.total.peer_bytes(), 0);
        assert_eq!(report.total.server_bytes, report.total.demand_bytes);
        assert_eq!(report.total_savings(&EnergyParams::valancius()), Some(0.0));
        report.check_conservation().unwrap();
    }

    #[test]
    fn overlapping_pair_shares_locally() {
        let trace = pair_trace(0); // full overlap
        let report = Simulator::new(SimConfig::default()).run(&trace);
        // Each 10 s window: fetcher from server, peer 1 fully from peer 0.
        let demand = report.total.demand_bytes;
        assert_eq!(report.total.peer_bytes(), demand / 2);
        assert_eq!(
            report.total.peer_bytes_by_layer[0],
            demand / 2,
            "all at ExP"
        );
        // User 1 downloaded from peers; user 0 uploaded everything.
        assert_eq!(report.users[0].uploaded_bytes, demand / 2);
        assert_eq!(report.users[1].uploaded_bytes, 0);
        report.check_conservation().unwrap();
    }

    #[test]
    fn partial_overlap_shares_partially() {
        let trace = pair_trace(300); // half overlap
        let report = Simulator::new(SimConfig::default()).run(&trace);
        let peer = report.total.peer_bytes();
        assert!(peer > 0);
        assert!(peer < report.total.demand_bytes / 2);
        report.check_conservation().unwrap();
    }

    #[test]
    fn upload_ratio_caps_offload() {
        let trace = pair_trace(0);
        let full = Simulator::new(SimConfig::with_ratio(1.0)).run(&trace);
        let half = Simulator::new(SimConfig::with_ratio(0.5)).run(&trace);
        assert!((half.total.offload_share() / full.total.offload_share() - 0.5).abs() < 0.01);
    }

    #[test]
    fn conservation_on_generated_trace() {
        let trace = tiny_trace();
        let report = Simulator::new(SimConfig::default()).run(&trace);
        report.check_conservation().unwrap();
        assert!(report.total.demand_bytes > 0);
        let s = report.total_savings(&EnergyParams::valancius()).unwrap();
        assert!((0.0..1.0).contains(&s), "savings {s}");
    }

    #[test]
    fn run_store_matches_run() {
        let trace = tiny_trace();
        let store = SessionStore::from_trace(&trace);
        for matcher in [MatcherKind::Hierarchical, MatcherKind::Random] {
            let cfg = SimConfig {
                matcher,
                ..Default::default()
            };
            let sim = Simulator::new(cfg);
            assert_eq!(
                sim.run(&trace),
                sim.run_store(&store),
                "{matcher:?}: prebuilt store must replay identically"
            );
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let trace = tiny_trace();
        let c1 = SimConfig {
            threads: 1,
            ..Default::default()
        };
        let c4 = SimConfig {
            threads: 4,
            ..Default::default()
        };
        let r1 = Simulator::new(c1).run(&trace);
        let r4 = Simulator::new(c4).run(&trace);
        assert_eq!(r1, r4);
    }

    #[test]
    fn random_matcher_deterministic_and_no_better_locality() {
        let trace = tiny_trace();
        let cfg = SimConfig {
            matcher: MatcherKind::Random,
            ..Default::default()
        };
        let a = Simulator::new(cfg.clone()).run(&trace);
        let b = Simulator::new(cfg).run(&trace);
        assert_eq!(a, b, "random matcher must be seed-deterministic");
        let hier = Simulator::new(SimConfig::default()).run(&trace);
        assert_eq!(hier.total.peer_bytes(), a.total.peer_bytes());
        assert!(
            hier.total.peer_bytes_by_layer[0] >= a.total.peer_bytes_by_layer[0],
            "hierarchical keeps at least as many bytes exchange-local"
        );
        // And that translates into at least as much energy saved.
        let p = EnergyParams::valancius();
        assert!(hier.total_savings(&p).unwrap() >= a.total_savings(&p).unwrap());
    }

    #[test]
    fn capacity_measures_watch_time() {
        let trace = pair_trace(0);
        let report = Simulator::new(SimConfig::default()).run(&trace);
        let swarm = &report.swarms[0];
        // Time-averaged capacity: two 600 s sessions over the horizon.
        let expected = 2.0 * 600.0 / trace.horizon_seconds() as f64;
        assert!(
            (swarm.time_avg_capacity / expected - 1.0).abs() < 0.02,
            "time-avg capacity {} vs expected {expected}",
            swarm.time_avg_capacity
        );
        // Effective capacity: while active, occupancy is exactly 2, and
        // L̄ = 2 inverts to c ≈ 1.594.
        assert!(
            (swarm.capacity - 1.594).abs() < 0.01,
            "effective capacity {}",
            swarm.capacity
        );
    }

    #[test]
    fn daily_cells_cover_active_days_only() {
        let trace = pair_trace(0); // both sessions on day 0
        let report = Simulator::new(SimConfig::default()).run(&trace);
        assert_eq!(report.daily.len(), 1);
        assert_eq!(report.daily[0].day, 0);
        assert_eq!(report.daily[0].isp, Some(IspId(0)));
    }

    #[test]
    #[should_panic(expected = "invalid simulator config")]
    fn rejects_invalid_config() {
        let _ = Simulator::new(SimConfig {
            window_secs: 0,
            ..Default::default()
        });
    }

    #[test]
    fn preloading_reduces_sharing_but_conserves() {
        let trace = pair_trace(0);
        let cfg = SimConfig {
            preload_fraction: 0.4,
            ..Default::default()
        };
        let preloaded = Simulator::new(cfg).run(&trace);
        preloaded.check_conservation().unwrap();
        let baseline = Simulator::new(SimConfig::default()).run(&trace);
        // Same demand, less of it peer-shareable.
        assert_eq!(preloaded.total.demand_bytes, baseline.total.demand_bytes);
        assert!(preloaded.total.preload_bytes > 0);
        assert!(
            (preloaded.total.preload_bytes as f64 / preloaded.total.demand_bytes as f64 - 0.4)
                .abs()
                < 0.01
        );
        assert!(preloaded.total.offload_share() < baseline.total.offload_share());
        // And therefore lower savings: preloading fights peer assistance.
        let p = EnergyParams::valancius();
        assert!(preloaded.total_savings(&p).unwrap() < baseline.total_savings(&p).unwrap());
    }

    #[test]
    fn edge_cache_serves_head_items_locally() {
        let trace = pair_trace(100_000); // no overlap: all bytes are fallback
        let cfg = SimConfig {
            edge_cache: Some(crate::config::EdgeCache { top_items: 1 }),
            ..Default::default()
        };
        let cached = Simulator::new(cfg).run(&trace);
        cached.check_conservation().unwrap();
        // The pair trace watches item 0, which is cached: every byte served
        // from the exchange cache, none from the CDN.
        assert_eq!(cached.total.server_bytes, 0);
        assert_eq!(cached.total.cache_bytes, cached.total.demand_bytes);
        // Cache delivery skips the CDN network leg, saving energy even with
        // zero peer sharing.
        let p = EnergyParams::valancius();
        let s = cached.total_savings(&p).unwrap();
        assert!(s > 0.3, "cache-only savings {s}");
        // Uncached tail item would not benefit: compare against no cache.
        let plain = Simulator::new(SimConfig::default()).run(&trace);
        assert_eq!(plain.total.cache_bytes, 0);
        assert_eq!(plain.total_savings(&p), Some(0.0));
    }

    #[test]
    fn partial_participation_cuts_offload() {
        let trace = tiny_trace();
        let full = Simulator::new(SimConfig::default()).run(&trace);
        let partial = Simulator::new(SimConfig {
            participation_rate: 0.3,
            ..Default::default()
        })
        .run(&trace);
        partial.check_conservation().unwrap();
        assert!(
            partial.total.offload_share() < full.total.offload_share(),
            "30% participation must offload less: {} vs {}",
            partial.total.offload_share(),
            full.total.offload_share()
        );
        // Non-participants never upload.
        let mut non_participants_uploading = 0;
        for (uid, t) in partial.active_users() {
            if !super::participates(uid, 0.3) {
                assert_eq!(t.uploaded_bytes, 0, "user {uid} must not upload");
                non_participants_uploading += 1;
            }
        }
        assert!(
            non_participants_uploading > 0,
            "test must cover non-participants"
        );
        // Deterministic membership: same result twice.
        let again = Simulator::new(SimConfig {
            participation_rate: 0.3,
            ..Default::default()
        })
        .run(&trace);
        assert_eq!(partial, again);
    }

    #[test]
    fn participation_is_monotone() {
        let trace = tiny_trace();
        let offload_at = |rate: f64| {
            Simulator::new(SimConfig {
                participation_rate: rate,
                ..Default::default()
            })
            .run(&trace)
            .total
            .offload_share()
        };
        let lo = offload_at(0.2);
        let mid = offload_at(0.6);
        let hi = offload_at(1.0);
        assert!(
            lo < mid && mid < hi,
            "offload must grow with participation: {lo} {mid} {hi}"
        );
    }

    #[test]
    fn soa_active_set_matches_row_reference_on_generated_trace() {
        // The columnar window loop against the retained row-based oracle on
        // a real generated trace, across matchers and the config knobs that
        // feed the active set (preload, participation, cache).
        let trace = tiny_trace();
        let store = SessionStore::from_trace(&trace);
        let configs = [
            SimConfig::default(),
            SimConfig {
                matcher: MatcherKind::Random,
                ..Default::default()
            },
            SimConfig {
                preload_fraction: 0.3,
                participation_rate: 0.5,
                edge_cache: Some(crate::config::EdgeCache { top_items: 2 }),
                window_secs: 30,
                ..Default::default()
            },
        ];
        for cfg in configs {
            let sim = Simulator::new(cfg);
            assert_eq!(sim.run_store(&store), sim.run_store_rows(&store));
        }
    }

    mod soa_properties {
        use super::*;
        use consume_local_topology::IspTopology;
        use proptest::prelude::*;

        /// Random session records over a tiny world: 40 users across 2
        /// ISPs / 8 exchanges, 6 items, a 2-day horizon, devices drawn from
        /// the real mix. Small enough that swarms overlap heavily, large
        /// enough to exercise admit/retire churn and the idle-gap jump.
        fn records_strategy() -> impl Strategy<Value = Vec<SessionRecord>> {
            let record = (
                0u32..40,         // user
                0u32..6,          // content
                0u64..2 * 86_400, // start
                60u32..5_000,     // duration
                0usize..5,        // device (MIX index)
                0u8..2,           // isp
                0u32..8,          // exchange
            )
                .prop_map(|(user, content, start, duration, device, isp, exchange)| {
                    let topo = IspTopology::new(8, 2).unwrap();
                    SessionRecord {
                        user: UserId(user),
                        content: ContentId(content),
                        start: SimTime(start),
                        duration_secs: duration,
                        device: DeviceClass::MIX[device].0,
                        isp: IspId(isp),
                        location: topo.location_of(ExchangeId(exchange)),
                    }
                });
            proptest::collection::vec(record, 1..60)
        }

        proptest! {
            #[test]
            fn prop_soa_and_row_paths_agree(
                records in records_strategy(),
                matcher_pick in 0u8..2,
                window_secs in 5u64..600,
                participation_pct in 30u64..=100,
            ) {
                let store = SessionStore::from_records(&records, 2 * 86_400, 40);
                let cfg = SimConfig {
                    matcher: if matcher_pick == 1 {
                        MatcherKind::Random
                    } else {
                        MatcherKind::Hierarchical
                    },
                    window_secs,
                    participation_rate: participation_pct as f64 / 100.0,
                    ..Default::default()
                };
                let sim = Simulator::new(cfg);
                let soa = sim.run_store(&store);
                let rows = sim.run_store_rows(&store);
                prop_assert_eq!(soa, rows);
            }
        }
    }

    #[test]
    fn cache_and_preload_compose() {
        let trace = pair_trace(0);
        let cfg = SimConfig {
            preload_fraction: 0.3,
            edge_cache: Some(crate::config::EdgeCache { top_items: 1 }),
            ..Default::default()
        };
        let report = Simulator::new(cfg).run(&trace);
        report.check_conservation().unwrap();
        // Preloaded bytes of cached items are served from the cache.
        assert_eq!(report.total.preload_bytes, 0);
        assert!(report.total.cache_bytes > 0);
        assert!(report.total.peer_bytes() > 0);
    }
}
