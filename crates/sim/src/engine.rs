//! The discrete time-step simulation engine.
//!
//! For every sub-swarm the engine sweeps the trace in Δτ windows, skipping
//! idle gaps, and delegates per-window upload assignment to the configured
//! matcher. Sub-swarms are independent, so the engine shards them across
//! std-scoped worker threads; results are merged in deterministic key
//! order and the random matcher is seeded per swarm, so the report is
//! bit-identical regardless of thread count.
//!
//! The engine replays the **columnar** [`SessionStore`]: grouping reads the
//! content/ISP/bitrate columns, each sub-swarm drives the store's sliding
//! active-window cursor over the start-sorted columns, and only the columns
//! a pass touches move through the cache.
//!
//! Every way of feeding sessions to the engine goes through one entry
//! point: [`Simulator::simulate`] consumes any [`SessionSource`] — a whole
//! trace or prebuilt store in one batch, a [`SegmentedStore`] or generated
//! [`SegmentStream`] day by day, or the
//! [`online`](crate::online) ingest channel as watermarked batches — and
//! every source produces the **byte-identical** report (the resumable
//! per-swarm window loops of [`SegmentedRun`] make batch boundaries
//! invisible). The historical `run`/`run_store`/`run_segmented`/
//! `run_trace_stream`/`begin_segmented` entry points survive as thin
//! deprecated wrappers.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};

use consume_local_swarm::matching::MatchOutcome;
use consume_local_swarm::{Matcher, MatcherKind, Peer, SwarmKey, SwarmPolicy};
use consume_local_topology::{ExchangeId, IspId, PopId, UserLocation};
use consume_local_trace::{
    device::BitrateClass, ContentId, SegmentStream, SegmentedStore, SessionStore, SimTime, Trace,
};

use crate::checkpoint::{CheckpointError, Checkpointer, SnapshotReader, SnapshotWriter};
use crate::config::{EdgeCache, SimConfig, SimConfigError, UploadModel};
use crate::ledger::ByteLedger;
use crate::par::{parallel_map, parallel_map_slices};
use crate::report::{DailyIspCell, Degradation, SimReport, SimWarning, SwarmReport, UserTraffic};
use crate::source::SessionSource;

/// The simulator: a configured engine, reusable across traces.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`SimConfig::validate`]);
    /// use [`Simulator::try_new`] to handle invalid configurations as typed
    /// errors instead.
    pub fn new(config: SimConfig) -> Self {
        match Self::try_new(config) {
            Ok(sim) => sim,
            Err(e) => panic!("invalid simulator config: {e}"),
        }
    }

    /// Creates a simulator, rejecting an invalid configuration as a typed
    /// [`SimConfigError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint (see [`SimConfig::validate`]).
    pub fn try_new(config: SimConfig) -> Result<Self, SimConfigError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the simulation over any [`SessionSource`] and returns the full
    /// report — the one entry point behind which every feeding mode meets.
    ///
    /// The report is **byte-identical across sources**: a whole [`Trace`],
    /// its prebuilt [`SessionStore`], a per-day [`SegmentedStore`], a
    /// generated [`SegmentStream`], or the online ingest channel
    /// ([`online::channel`](crate::online::channel)) all produce the same
    /// bytes for the same sessions, at any thread count and any batch
    /// schedule. A caller replaying the same trace under many
    /// configurations (the sweep runner) should build the store once and
    /// pass `&store`.
    ///
    /// # Example
    ///
    /// ```
    /// use consume_local_sim::{SimConfig, Simulator};
    /// use consume_local_trace::{SegmentedStore, SessionStore, TraceConfig, TraceGenerator};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let trace = TraceGenerator::new(TraceConfig::london_sep2013().scaled(0.0003)?, 7)
    ///     .generate()?;
    /// let store = SessionStore::from_trace(&trace);   // build once, share freely
    /// let sim = Simulator::new(SimConfig::default());
    /// let report = sim.simulate(&store);
    /// // Any other source of the same sessions replays identically.
    /// assert_eq!(report, sim.simulate(&trace));
    /// assert_eq!(report, sim.simulate(&SegmentedStore::from_trace(&trace)));
    /// assert!(report.total.demand_bytes > 0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn simulate(&self, source: impl SessionSource) -> SimReport {
        let mut run = self.begin(source.horizon_secs(), source.population_len());
        source.for_each_batch(&mut |batch, watermark| run.push_batch(batch, watermark));
        run.finish()
    }

    /// Like [`Simulator::simulate`], additionally invoking `on_day_close`
    /// with each day's system-wide ledger as the source's watermark closes
    /// it — the serving-mode hook behind the online engine's day reports.
    ///
    /// A day closes as soon as the watermark reaches its end (no session
    /// starting later can touch it); days the source never watermarks past
    /// close at the end of the run, so every horizon day is emitted exactly
    /// once, in day order. The returned report is byte-identical to
    /// [`Simulator::simulate`] on the same source, and the emitted ledgers
    /// are exactly the per-day cells of that report aggregated across ISPs.
    pub fn simulate_days(
        &self,
        source: impl SessionSource,
        on_day_close: impl FnMut(DayClose),
    ) -> SimReport {
        self.begin(source.horizon_secs(), source.population_len())
            .simulate_remaining_days(source, on_day_close)
    }

    /// Like [`Simulator::simulate_days`], writing crash-safe snapshots at
    /// the cadence of `checkpointer` (after the watermark advance or day
    /// close that made one due — always at a batch boundary, so the
    /// snapshot is a complete resumable state). After a crash,
    /// [`Simulator::resume`] (or
    /// [`resume_latest`](crate::checkpoint::resume_latest)) rebuilds the
    /// run from the newest snapshot and
    /// [`SegmentedRun::simulate_remaining_days`] finishes it on the
    /// post-checkpoint batches, byte-identically to the uninterrupted run.
    ///
    /// # Errors
    ///
    /// Propagates the first snapshot-write failure as its
    /// [`CheckpointError`] (the simulation stops at that batch boundary;
    /// the last successfully written snapshot is intact).
    pub fn simulate_days_checkpointed(
        &self,
        source: impl SessionSource,
        checkpointer: &mut Checkpointer,
        mut on_day_close: impl FnMut(DayClose),
    ) -> Result<SimReport, CheckpointError> {
        let mut run = self.begin(source.horizon_secs(), source.population_len());
        let mut failure: Option<CheckpointError> = None;
        source.for_each_batch(&mut |batch, watermark| {
            if failure.is_some() {
                return;
            }
            run.push_batch(batch, watermark);
            let before = run.closed_days;
            run.drain_closed_days(&mut on_day_close);
            let closed = run.closed_days - before;
            let mut note = || -> Result<(), CheckpointError> {
                checkpointer.note_watermark(&run)?;
                for _ in 0..closed {
                    checkpointer.note_day_close(&run)?;
                }
                Ok(())
            };
            if let Err(e) = note() {
                failure = Some(e);
            }
        });
        if let Some(e) = failure {
            return Err(e);
        }
        Ok(run.finish_days(on_day_close))
    }

    /// Begins an incremental run: push watermarked session batches with
    /// [`SegmentedRun::push_batch`] (or day segments with the
    /// [`SegmentedRun::push_segment`] convenience), then call
    /// [`SegmentedRun::finish`]. [`Simulator::simulate`] is the one-call
    /// wrapper; this entry point exists for callers that interleave batch
    /// production with other work (the sweep runner shares each generated
    /// segment across many concurrent runs).
    pub fn begin(&self, horizon_secs: u64, population_len: usize) -> SegmentedRun {
        SegmentedRun {
            sim: self.clone(),
            horizon_secs,
            population_len,
            states: Vec::new(),
            watermark: 0,
            closed_days: 0,
            spilled_days: 0,
            spilled_cells: Vec::new(),
            max_start_secs: 0,
            max_user: 0,
            max_content: 0,
        }
    }

    /// Runs the simulation over a trace.
    #[deprecated(note = "use `Simulator::simulate(&trace)`")]
    pub fn run(&self, trace: &Trace) -> SimReport {
        self.simulate(trace)
    }

    /// Runs the simulation over a prebuilt columnar session store.
    #[deprecated(note = "use `Simulator::simulate(&store)`")]
    pub fn run_store(&self, store: &SessionStore) -> SimReport {
        self.simulate(store)
    }

    /// Runs the simulation over a [`SegmentedStore`], day by day.
    #[deprecated(note = "use `Simulator::simulate(&segmented_store)`")]
    pub fn run_segmented(&self, store: &SegmentedStore) -> SimReport {
        self.simulate(store)
    }

    /// Generates and simulates in one bounded-memory pass.
    #[deprecated(note = "use `Simulator::simulate(&mut stream)`")]
    pub fn run_trace_stream(&self, stream: &mut SegmentStream<'_>) -> SimReport {
        self.simulate(stream)
    }

    /// Begins an incremental segment-sequential run.
    #[deprecated(note = "use `Simulator::begin`")]
    pub fn begin_segmented(&self, horizon_secs: u64, population_len: usize) -> SegmentedRun {
        self.begin(horizon_secs, population_len)
    }

    /// The reference row-based engine: identical pipeline, but the per-swarm
    /// window loop materialises [`ActiveSession`] rows instead of driving
    /// the columnar [`ActiveSet`]. Kept only as the oracle the SoA fast path
    /// is property-tested against.
    #[cfg(test)]
    fn run_store_rows(&self, store: &SessionStore) -> SimReport {
        self.run_store_with(store, Self::simulate_swarm_rows)
    }

    /// The engine pipeline around a pluggable per-swarm simulation:
    /// grouping, the parallel per-swarm fan-out and the deterministic merge
    /// mirror the production one-shot path ([`SegmentedRun::push_batch`]'s
    /// whole-horizon fast path). Test-only: it exists so the row-based
    /// oracle runs through an identical pipeline.
    #[cfg(test)]
    fn run_store_with(
        &self,
        store: &SessionStore,
        simulate: impl Fn(&Self, SwarmKey, &[u32], &SessionStore) -> SwarmOutput + Sync,
    ) -> SimReport {
        // 1. Group sessions into sub-swarms (see [`group_by_swarm`]).
        let (indices, keyed) = group_by_swarm(&self.config, store);

        // 2. Simulate swarms (work-stealing across threads; each swarm's
        //    result is placed at its key-ordered slot).
        let n = keyed.len();
        let outputs = parallel_map(n, self.config.threads, |i| {
            let (key, range) = &keyed[i];
            simulate(self, *key, &indices[range.clone()], store)
        });

        // 3. Merge deterministically in key order (shared with the
        //    segment-sequential path).
        let parts: Vec<(SwarmKey, u64, SwarmOutput)> = outputs
            .into_iter()
            .zip(&keyed)
            .map(|(out, (key, range))| (*key, range.len() as u64, out))
            .collect();
        self.merge_outputs(
            store.horizon_secs(),
            store.population_len(),
            parts,
            Vec::new(),
            sort_key_warnings(store.sort_key_maxima()),
        )
    }

    /// Merges key-ordered per-swarm outputs into the final report — the
    /// common tail of every path ([`SegmentedRun::finish`], and through it
    /// [`Simulator::simulate`]).
    /// Day × ISP cells are collected flat and merged with one sort (no hash
    /// map rebuild); the per-user scatter fans out over disjoint user-id
    /// ranges (see [`scatter_users`]).
    fn merge_outputs(
        &self,
        horizon: u64,
        population_len: usize,
        parts: Vec<(SwarmKey, u64, SwarmOutput)>,
        spilled_cells: Vec<(u32, Option<IspId>, ByteLedger)>,
        warnings: Vec<SimWarning>,
    ) -> SimReport {
        let total_windows = horizon / self.config.window_secs;
        let mut swarms = Vec::with_capacity(parts.len());
        let mut daily_cells: Vec<(u32, Option<IspId>, ByteLedger)> = Vec::new();
        let mut total = ByteLedger::new();
        let mut degradation = Degradation::default();
        for (key, sessions, out) in &parts {
            total.merge(&out.ledger);
            degradation.merge(&out.degradation);
            for (day, ledger) in &out.daily {
                daily_cells.push((*day, key.isp, *ledger));
            }
            // Spilled days precede every live day, so the frozen points
            // chain in front in day order.
            let daily_points = out
                .frozen
                .iter()
                .map(|f| crate::report::SwarmDay {
                    day: f.day,
                    capacity: f.capacity(),
                    demand_bytes: f.demand_bytes,
                })
                .chain(
                    out.daily
                        .iter()
                        .map(|(day, ledger)| crate::report::SwarmDay {
                            day: *day,
                            capacity: effective_capacity(ledger),
                            demand_bytes: ledger.demand_bytes,
                        }),
                )
                .collect();
            swarms.push(SwarmReport {
                key: *key,
                ledger: out.ledger,
                sessions: *sessions,
                capacity: effective_capacity(&out.ledger),
                time_avg_capacity: out.ledger.measured_capacity(total_windows),
                upload_ratio: out.upload_ratio,
                daily: daily_points,
            });
        }
        let users = scatter_users(population_len, &parts, self.config.threads);
        daily_cells.sort_by_key(|&(day, isp, _)| (day, isp));
        // The spilled prefix is already grouped and covers strictly earlier
        // days than any live cell; appending the live groups reproduces the
        // unspilled sort-and-merge byte for byte.
        let mut daily: Vec<DailyIspCell> = spilled_cells
            .into_iter()
            .map(|(day, isp, ledger)| DailyIspCell { day, isp, ledger })
            .collect();
        for (day, isp, ledger) in daily_cells {
            match daily.last_mut() {
                Some(cell) if cell.day == day && cell.isp == isp => cell.ledger.merge(&ledger),
                _ => daily.push(DailyIspCell { day, isp, ledger }),
            }
        }

        SimReport {
            horizon_secs: horizon,
            window_secs: self.config.window_secs,
            swarms,
            users,
            daily,
            total,
            degradation,
            warnings,
        }
    }

    /// Simulates one sub-swarm over its sessions (already start-ordered):
    /// one [`SwarmSim`] driven over the whole store in a single
    /// [`SwarmSim::advance`] pass. Test-only: the production one-shot path
    /// runs the same machine through [`SegmentedRun::push_batch`]'s
    /// whole-horizon fan-out; this shape feeds the row-oracle pipeline.
    #[cfg(test)]
    fn simulate_swarm(&self, key: SwarmKey, indices: &[u32], store: &SessionStore) -> SwarmOutput {
        let first = indices[0] as usize;
        let mut swarm = SwarmSim::new(
            self,
            key,
            store.start_secs()[first],
            store.device()[first].bitrate_bps(),
        );
        swarm.advance(self, store, indices, u64::MAX, store.horizon_secs());
        swarm.take_output()
    }
}

/// One day's closed system-wide ledger, emitted by
/// [`Simulator::simulate_days`] / [`SegmentedRun::drain_closed_days`] as
/// the watermark (or the end of the run) seals the day.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DayClose {
    /// 0-based day index.
    pub day: u32,
    /// The day's ledger summed across every swarm (equals the day's
    /// [`DailyIspCell`]s of the final report aggregated over ISPs).
    pub ledger: ByteLedger,
}

/// The [`SimWarning`]s implied by a session set's sort-key maxima: one
/// [`SimWarning::SortKeyFallback`] when the joint field widths overflow
/// the packed 64-bit key (the same predicate the trace crate's packing and
/// `TraceStats` use), nothing otherwise. Element-wise maxima folding
/// across batches equals the monolithic maxima, so every source yields the
/// same warning set for the same sessions.
fn sort_key_warnings(maxima: (u64, u32, u32)) -> Vec<SimWarning> {
    let (max_start_secs, max_user, max_content) = maxima;
    if consume_local_trace::generator::sort_key_fallback_required(maxima) {
        vec![SimWarning::SortKeyFallback {
            max_start_secs,
            max_user,
            max_content,
        }]
    } else {
        Vec::new()
    }
}

/// The columnar active set of one sub-swarm: parallel per-session columns in
/// arrival order, with the `peers`/`needs`/`budgets` columns shaped exactly
/// as [`Matcher::match_window_into`] consumes them. Pushes append to every
/// column; retiring compacts all columns in lockstep (order-preserving, like
/// `Vec::retain`), and `min_end` lets a window skip the retire scan when no
/// active session can have ended yet.
#[derive(Debug)]
struct ActiveSet {
    /// Session end times in seconds.
    ends: Vec<u64>,
    /// Rank of each session's user among the swarm's sorted distinct users.
    user_slots: Vec<u32>,
    /// Matcher input: peer identities.
    peers: Vec<Peer>,
    /// Full per-window demand `β·Δτ/8` in bytes, preload included.
    full_demands: Vec<u64>,
    /// In-swarm per-window demand (full demand minus the preloaded part).
    demands: Vec<u64>,
    /// Per-window bytes served by predictive preloading.
    preloads: Vec<u64>,
    /// Matcher input: peer-receivable caps `min(demand, q·Δτ/8)`.
    needs: Vec<u64>,
    /// Matcher input: per-window upload budgets (0 for non-participants).
    budgets: Vec<u64>,
    /// Smallest entry of `ends` (`u64::MAX` when empty): windows with
    /// `t < min_end` cannot retire anything and skip the scan.
    min_end: u64,
}

impl Default for ActiveSet {
    fn default() -> Self {
        Self {
            ends: Vec::new(),
            user_slots: Vec::new(),
            peers: Vec::new(),
            full_demands: Vec::new(),
            demands: Vec::new(),
            preloads: Vec::new(),
            needs: Vec::new(),
            budgets: Vec::new(),
            min_end: u64::MAX,
        }
    }
}

impl ActiveSet {
    fn len(&self) -> usize {
        self.ends.len()
    }

    fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        end: u64,
        user_slot: u32,
        peer: Peer,
        full_demand: u64,
        demand: u64,
        preload: u64,
        need: u64,
        budget: u64,
    ) {
        self.ends.push(end);
        self.user_slots.push(user_slot);
        self.peers.push(peer);
        self.full_demands.push(full_demand);
        self.demands.push(demand);
        self.preloads.push(preload);
        self.needs.push(need);
        self.budgets.push(budget);
        self.min_end = self.min_end.min(end);
    }

    /// Drops every session with `end <= t`, preserving arrival order —
    /// exactly `retain(|a| a.end > t)` over the row shape. Returns whether
    /// the set changed; the no-op case is decided by one `min_end` compare.
    fn retire_ended(&mut self, t: u64) -> bool {
        if self.min_end > t {
            return false;
        }
        let mut w = 0usize;
        let mut min_end = u64::MAX;
        for r in 0..self.ends.len() {
            let end = self.ends[r];
            if end > t {
                if w != r {
                    self.ends[w] = end;
                    self.user_slots[w] = self.user_slots[r];
                    self.peers[w] = self.peers[r];
                    self.full_demands[w] = self.full_demands[r];
                    self.demands[w] = self.demands[r];
                    self.preloads[w] = self.preloads[r];
                    self.needs[w] = self.needs[r];
                    self.budgets[w] = self.budgets[r];
                }
                min_end = min_end.min(end);
                w += 1;
            }
        }
        self.ends.truncate(w);
        self.user_slots.truncate(w);
        self.peers.truncate(w);
        self.full_demands.truncate(w);
        self.demands.truncate(w);
        self.preloads.truncate(w);
        self.needs.truncate(w);
        self.budgets.truncate(w);
        self.min_end = min_end;
        true
    }
}

/// A session queued for admission but not yet reached by its swarm's window
/// loop when a day segment ended: everything the admission path needs,
/// materialised so the segment's columns can be dropped. At most one
/// window's worth of sessions per swarm is ever carried (plus, for window
/// lengths beyond a day, the windows the boundary overran).
#[derive(Debug, Clone, Copy)]
struct PendingSession {
    start: u64,
    end: u64,
    user: u32,
    bitrate_bps: u32,
    isp: IspId,
    location: UserLocation,
}

/// The resumable per-swarm window loop: the columnar active set, the
/// matcher (rotation/RNG state included), the current window boundary and
/// the per-swarm accumulators, packaged so the loop can pause at a segment
/// boundary and resume when the next day's sessions arrive.
///
/// A one-batch source drives it over the whole store in one
/// [`SwarmSim::advance`] call; [`SegmentedRun`] drives the same machine one
/// batch at a time. Because a pause/resume changes neither the active
/// set, the matcher state, the cached membership totals nor the window
/// boundary — and sessions unreached at a boundary are carried forward in
/// start order — the two schedules produce byte-identical outputs (pinned
/// by `tests/segmented.rs`).
///
/// The active set is fully columnar ([`ActiveSet`]): its peer/need/budget
/// columns feed [`Matcher::match_window_into`] as slices directly, so a
/// steady-state window performs **zero** allocation and zero copying of
/// window inputs — the per-window work is the matcher itself, the user
/// accumulation and the ledger. Membership-dependent totals (demand,
/// preload, the CDN-ineligible remainder) are cached between membership
/// changes, and the retire scan is skipped entirely while every active
/// session's end lies beyond the boundary (`min_end` tracking).
/// The matcher slot of a [`SwarmSim`]: a live machine owns its built
/// matcher; a dormant (compacted) machine keeps only the matcher's
/// checkpoint word — exactly what [`crate::checkpoint`] persists — and
/// rebuilds the matcher from it on reactivation.
enum MatcherSlot {
    Live(Box<dyn Matcher + Send>),
    Dormant { word: u64 },
}

impl MatcherSlot {
    /// The live matcher. Callers must have thawed the machine first.
    fn live_mut(&mut self) -> &mut (dyn Matcher + Send) {
        match self {
            MatcherSlot::Live(m) => m.as_mut(),
            MatcherSlot::Dormant { .. } => unreachable!("dormant machine advanced without thaw"),
        }
    }

    /// The matcher's checkpoint word, live or dormant.
    fn word(&self) -> u64 {
        match self {
            MatcherSlot::Live(m) => m.checkpoint_word(),
            MatcherSlot::Dormant { word } => *word,
        }
    }
}

struct SwarmSim {
    matcher: MatcherSlot,
    /// The matcher's key-derived seed (`swarm_seed` of the run seed and the
    /// swarm key), kept so a dormant machine can rebuild its matcher
    /// without knowing its key.
    matcher_seed: u64,
    active: ActiveSet,
    /// The next window boundary to process (always a multiple of Δτ).
    t: SimTime,
    /// Sessions carried across a segment boundary, in start order; always
    /// ahead of (or equal to) `t` and behind every later segment's starts.
    carry: VecDeque<PendingSession>,
    /// Slot lookup for the incremental dense user accumulators.
    slot_of: HashMap<u32, u32>,
    /// Slot → user id, in first-appearance order.
    users: Vec<u32>,
    /// Slot → (watched, uploaded) bytes.
    user_acc: Vec<(u64, u64)>,
    ledger: ByteLedger,
    daily: Vec<(u32, ByteLedger)>,
    upload_ratio: f64,
    /// Whether this swarm's item sits in the configured edge cache.
    cached: bool,
    /// Membership-dependent window totals, recomputed only when the active
    /// set changes (integer sums in index order, so they equal a fresh
    /// per-window recomputation exactly).
    sums_stale: bool,
    preload_total: u64,
    swarm_demand: u64,
    ineligible: u64,
    outcome: MatchOutcome,
    /// Seed of this swarm's dedicated defection stream (independent of the
    /// matcher's stream, so fault injection never perturbs matching).
    defect_seed: u64,
    /// Seed of the receiver-side flake stream (its own domain tag: a user
    /// defecting as an uploader and flaking as a receiver are independent
    /// coins, both derived from the same counter-hash construction).
    recv_defect_seed: u64,
    /// Copy-on-flake scratch for the needs column: windows where a
    /// defecting receiver's demand flakes get their zeroed needs here, so
    /// the shared column (and the cached membership sums) stay untouched.
    needs_flaked: Vec<u64>,
    /// Fault-injection losses accumulated over the swarm's lifetime.
    degradation: Degradation,
}

impl SwarmSim {
    /// Creates the state machine from the swarm's first (earliest) session:
    /// the first window boundary and the representative upload ratio for
    /// the report (uniform within bitrate-split swarms; a demand-weighted
    /// mix otherwise).
    fn new(sim: &Simulator, key: SwarmKey, first_start_secs: u64, first_bitrate_bps: u32) -> Self {
        let matcher_seed = swarm_seed(sim.config.seed, &key);
        Self {
            matcher: MatcherSlot::Live(sim.config.matcher.build(matcher_seed)),
            matcher_seed,
            active: ActiveSet::default(),
            t: SimTime(align_up(first_start_secs, sim.config.window_secs)),
            carry: VecDeque::new(),
            slot_of: HashMap::new(),
            users: Vec::new(),
            user_acc: Vec::new(),
            ledger: ByteLedger::new(),
            daily: Vec::new(),
            upload_ratio: sim.config.upload.ratio_for(first_bitrate_bps).min(1.0),
            cached: sim
                .config
                .edge_cache
                .is_some_and(|c| key.content.0 < c.top_items),
            sums_stale: true,
            preload_total: 0,
            swarm_demand: 0,
            ineligible: 0,
            outcome: MatchOutcome::default(),
            defect_seed: swarm_seed(sim.config.seed ^ DEFECT_STREAM_TAG, &key),
            recv_defect_seed: swarm_seed(sim.config.seed ^ RECV_DEFECT_STREAM_TAG, &key),
            needs_flaked: Vec::new(),
            degradation: Degradation::default(),
        }
    }

    /// Admits one session into the active set (skipping sessions that end
    /// by the current boundary). Per-session window quantities are fixed
    /// for the whole session (bitrate and Δτ do not change), so they are
    /// computed once here instead of once per window. A preloaded fraction
    /// of every session's bytes bypasses the swarm (§VI preloading
    /// extension; 0 by default).
    fn admit(&mut self, sim: &Simulator, p: PendingSession) {
        if p.end <= self.t.as_secs() {
            return;
        }
        let dt = sim.config.window_secs;
        let full_demand = u64::from(p.bitrate_bps) * dt / 8;
        let preload = (full_demand as f64 * sim.config.preload_fraction) as u64;
        let demand = full_demand - preload;
        // Non-participating users never upload (NetSession-style partial
        // participation); their own peer-receipt cap is based on the
        // swarm's typical uplink, not their zero one.
        let nominal_budget = sim.config.upload.budget_bytes(p.bitrate_bps, dt);
        let budget = if participates(p.user, sim.config.participation_rate) {
            nominal_budget
        } else {
            0
        };
        let user_slot = match self.slot_of.entry(p.user) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => {
                let slot = self.users.len() as u32;
                self.users.push(p.user);
                self.user_acc.push((0, 0));
                *e.insert(slot)
            }
        };
        self.active.push(
            p.end,
            user_slot,
            Peer {
                isp: p.isp,
                location: p.location,
            },
            full_demand,
            demand,
            preload,
            demand.min(nominal_budget),
            budget,
        );
    }

    /// Runs the window loop over `indices` (a start-ordered index subset of
    /// `store` — one segment's sessions for this swarm, or the whole
    /// store), processing every window boundary strictly below `limit` that
    /// the supplied sessions cover, and pausing at `limit` with unreached
    /// sessions moved into the carry buffer. Pass `limit = u64::MAX` for a
    /// single full-horizon pass.
    fn advance(
        &mut self,
        sim: &Simulator,
        store: &SessionStore,
        indices: &[u32],
        limit: u64,
        horizon: u64,
    ) {
        self.thaw(sim);
        let dt = sim.config.window_secs;
        // Hot columns as local slices: one pointer load each at admission
        // time instead of a walk through the store on every field.
        let starts_col = store.start_secs();
        let durations_col = store.duration_secs();
        let users_col = store.user();
        let devices_col = store.device();
        let isps_col = store.isp();
        let locations_col = store.location();
        let pending_of = |i: usize| PendingSession {
            start: starts_col[i],
            end: starts_col[i] + u64::from(durations_col[i]),
            user: users_col[i],
            bitrate_bps: devices_col[i].bitrate_bps(),
            isp: isps_col[i],
            location: locations_col[i],
        };
        // The store's sliding cursor admits each session exactly once as
        // the window boundary crosses its start.
        let mut cursor = store.cursor(indices);

        loop {
            let t = self.t.as_secs();
            if t >= horizon {
                // Windows stop at the horizon; whatever the cursor still
                // holds can never be replayed (same as the monolithic loop
                // exiting), so there is nothing to carry.
                return;
            }
            if t >= limit {
                // Window `t` belongs to the next segment's pass: stash the
                // segment's unreached sessions before its columns go away.
                let carry = &mut self.carry;
                cursor.admit_until(u64::MAX, |i| carry.push_back(pending_of(i)));
                return;
            }
            self.sums_stale |= self.active.retire_ended(t);
            let len_before_admit = self.active.len();
            // Carried sessions first: their starts precede every session of
            // the current segment, so admission order stays start-ordered.
            while let Some(p) = self.carry.front().copied() {
                if p.start > t {
                    break;
                }
                self.carry.pop_front();
                self.admit(sim, p);
            }
            cursor.admit_until(t, |i| self.admit(sim, pending_of(i)));
            self.sums_stale |= self.active.len() != len_before_admit;
            if self.active.is_empty() {
                let next = self
                    .carry
                    .front()
                    .map(|p| p.start)
                    .or_else(|| cursor.next_start_secs());
                let Some(next_start) = next else {
                    // Nothing active and nothing queued: paused (more
                    // segments may follow) or finished.
                    return;
                };
                // Jump to the first window boundary at which the next
                // session is active (align *up*: a boundary before its start
                // would never pick it up and loop forever).
                self.t = SimTime(align_up(next_start, dt).max(t + dt));
                continue;
            }

            // Solo fast path. A lone peer is its windows' fetcher, so until
            // the next membership event (its own end, the next admission or
            // the horizon) every window is identical and transfers nothing:
            // account the whole run in closed form — per-day ledger chunks,
            // one watched-bytes bump — and advance the matcher's
            // window-indexed state in bulk. Solo windows dominate tail
            // swarms (> 80 % of all windows at the medium preset), which is
            // what makes this jump, not the per-window micro-costs, the
            // engine's biggest lever.
            if self.active.len() == 1 {
                let mut upper = self.active.ends[0].min(horizon);
                let next = self
                    .carry
                    .front()
                    .map(|p| p.start)
                    .or_else(|| cursor.next_start_secs());
                if let Some(next_start) = next {
                    // The joiner lands on the first boundary at or after its
                    // start; batch only the windows strictly before it.
                    upper = upper.min(align_up(next_start, dt));
                }
                // Batching past `limit` would strand the next segment's
                // joiners, so the run is also capped at the boundary — the
                // resumed pass continues it, and `note_solo_windows` is
                // additive, so the split leaves every outcome unchanged.
                let k = (upper - t).div_ceil(dt).min((limit - t).div_ceil(dt));
                debug_assert!(k >= 1, "the current window is always batchable");
                self.matcher.live_mut().note_solo_windows(k);

                let full_demand = self.active.full_demands[0];
                let demand = self.active.demands[0];
                let preload = self.active.preloads[0];
                self.user_acc[self.active.user_slots[0] as usize].0 += full_demand * k;

                // Chunk the run by the day each window starts in (windows
                // straddling midnight belong to their start's day, exactly
                // as the per-window path assigns them).
                let spd = consume_local_trace::time::SECS_PER_DAY;
                let cached = self.cached;
                let mut tw = t;
                let mut remaining = k;
                while remaining > 0 {
                    let day = (tw / spd) as u32;
                    let day_end = (u64::from(day) + 1) * spd;
                    let in_day = ((day_end - tw).div_ceil(dt)).min(remaining);
                    let mut chunk_ledger = ByteLedger {
                        demand_bytes: full_demand * in_day,
                        server_bytes: if cached { 0 } else { demand * in_day },
                        peer_bytes_by_layer: [0; 3],
                        cache_bytes: if cached { full_demand * in_day } else { 0 },
                        preload_bytes: if cached { 0 } else { preload * in_day },
                        active_windows: in_day,
                        peer_windows: in_day,
                    };
                    debug_assert!(chunk_ledger.is_conserved(), "solo chunk must conserve");
                    self.ledger.merge(&chunk_ledger);
                    match self.daily.last_mut() {
                        Some((d, ledger)) if *d == day => ledger.merge(&chunk_ledger),
                        _ => self.daily.push((day, std::mem::take(&mut chunk_ledger))),
                    }
                    tw += in_day * dt;
                    remaining -= in_day;
                }
                self.t = SimTime(t + k * dt);
                continue;
            }

            // Peer 0 (earliest joiner — the columns preserve arrival order)
            // is the fresh fetcher. The CDN-side "ineligible" remainder
            // carries the fetcher's full in-swarm demand plus every peer's
            // demand − need. An unchanged membership also means an unchanged
            // peer sequence, which the matcher turns into a reused locality
            // grouping (no per-window sort in stable windows).
            let peers_unchanged = !self.sums_stale;
            if self.sums_stale {
                self.preload_total = self.active.preloads.iter().sum();
                self.swarm_demand = self.active.demands.iter().sum();
                let tail_needs: u64 = self.active.needs[1..].iter().sum();
                self.ineligible = self.swarm_demand - tail_needs;
                self.sums_stale = false;
            }

            // Receiver-side fault injection: a defecting user's *demand* can
            // flake for a window (same counter-hash construction as uploader
            // defection, its own stream tag). A flaking receiver accepts no
            // peer bytes this window — its need is withheld from matching
            // and the deferred volume is served by the CDN/cache fallback
            // instead, accounted exactly in `failed_demand_bytes`. The
            // shared needs column is never mutated (copy-on-flake scratch),
            // so the cached membership sums stay valid.
            let cooperation = sim.config.cooperation_rate;
            let mut failed_demand = 0u64;
            let mut flaked = false;
            if cooperation < 1.0 {
                for k in 1..self.active.len() {
                    let need = self.active.needs[k];
                    if need > 0
                        && defects(
                            self.recv_defect_seed,
                            self.users[self.active.user_slots[k] as usize],
                            t,
                            cooperation,
                        )
                    {
                        if !flaked {
                            self.needs_flaked.clear();
                            self.needs_flaked.extend_from_slice(&self.active.needs);
                            flaked = true;
                        }
                        self.needs_flaked[k] = 0;
                        failed_demand += need;
                    }
                }
            }
            let needs: &[u64] = if flaked {
                &self.needs_flaked
            } else {
                &self.active.needs
            };
            self.matcher.live_mut().match_window_into_hinted(
                &self.active.peers,
                needs,
                &self.active.budgets,
                0,
                peers_unchanged,
                &mut self.outcome,
            );

            // Fault injection: a matched uploader may silently defect this
            // window (deterministic hash of swarm/user/window — see
            // `defects`). Its transfers fail, its upload credit is void, and
            // the receivers' bytes fall back to the CDN/cache. The user
            // accumulation pass therefore runs *before* the ledger so the
            // failed volume can be re-routed. The matcher's outcome itself
            // is never mutated — it is reused as the next window's hint.
            let mut failed_total = 0u64;
            let mut failed_by_layer = [0u64; 3];
            for (k, (&slot, &full_demand)) in self
                .active
                .user_slots
                .iter()
                .zip(&self.active.full_demands)
                .enumerate()
            {
                let acc = &mut self.user_acc[slot as usize];
                // Users watch their full demand (preloaded bytes included).
                acc.0 += full_demand;
                let uploaded = self.outcome.per_peer[k].uploaded;
                if uploaded > 0
                    && defects(self.defect_seed, self.users[slot as usize], t, cooperation)
                {
                    failed_total += uploaded;
                    for (f, u) in failed_by_layer
                        .iter_mut()
                        .zip(self.outcome.per_peer[k].uploaded_by_layer)
                    {
                        *f += u;
                    }
                } else {
                    acc.1 += uploaded;
                }
            }
            if failed_total > 0 || failed_demand > 0 {
                self.degradation.merge(&Degradation {
                    failed_transfer_bytes: failed_total,
                    failed_by_layer,
                    defection_windows: 1,
                    failed_demand_bytes: failed_demand,
                });
            }

            // Account the window. The CDN-side fallback carries the
            // ineligible remainder, the demand flaking receivers withheld
            // from matching, the matcher's residual unmet needs and the
            // bytes defectors failed to deliver; with an edge cache holding
            // this item, that fallback is served at the exchange instead of
            // the CDN.
            let demand_total = self.swarm_demand + self.preload_total;
            let fallback =
                self.ineligible + failed_demand + self.outcome.server_bytes + failed_total;
            let (server_total, cache_total, preload_srv, preload_cache) = if self.cached {
                (0, fallback, 0, self.preload_total)
            } else {
                (fallback, 0, self.preload_total, 0)
            };

            let mut peer_bytes_by_layer = self.outcome.peer_bytes_by_layer;
            for (p, f) in peer_bytes_by_layer.iter_mut().zip(failed_by_layer) {
                *p -= f;
            }
            let mut window_ledger = ByteLedger {
                demand_bytes: demand_total,
                server_bytes: server_total + preload_srv,
                peer_bytes_by_layer,
                cache_bytes: cache_total + preload_cache,
                preload_bytes: 0,
                active_windows: 1,
                peer_windows: self.active.len() as u64,
            };
            // Preload bytes are tracked in their own class when not cached.
            if !self.cached {
                window_ledger.server_bytes -= preload_srv;
                window_ledger.preload_bytes = preload_srv;
            }
            debug_assert!(window_ledger.is_conserved(), "window bytes must conserve");

            self.ledger.merge(&window_ledger);
            let day = (t / consume_local_trace::time::SECS_PER_DAY) as u32;
            match self.daily.last_mut() {
                Some((d, ledger)) if *d == day => ledger.merge(&window_ledger),
                _ => {
                    // Ledger moved into the vec; reuse the window value.
                    self.daily.push((day, std::mem::take(&mut window_ledger)));
                }
            }

            self.t = self.t + dt;
        }
    }

    /// Extracts the swarm's output, leaving the machine empty: users come
    /// out id-sorted (as the old presorted dense-slot scheme emitted them)
    /// and users who accumulated nothing — sessions never spanning a window
    /// boundary — are dropped. Taking `&mut self` (instead of `self`) lets
    /// [`SegmentedRun::finish_days`] drain and extract in one parallel pass
    /// over its state chunks.
    fn take_output(&mut self) -> SwarmOutput {
        let mut users: Vec<(u32, u64, u64)> = std::mem::take(&mut self.users)
            .into_iter()
            .zip(std::mem::take(&mut self.user_acc))
            .filter(|&(_, acc)| acc != (0, 0))
            .map(|(u, (w, up))| (u, w, up))
            .collect();
        users.sort_unstable_by_key(|&(u, _, _)| u);
        SwarmOutput {
            ledger: std::mem::take(&mut self.ledger),
            frozen: Vec::new(),
            daily: std::mem::take(&mut self.daily),
            users,
            upload_ratio: self.upload_ratio,
            degradation: std::mem::take(&mut self.degradation),
        }
    }

    /// Whether the machine neither holds active/carried sessions nor can
    /// receive any in the current segment — nothing to advance.
    fn is_quiescent(&self) -> bool {
        self.active.is_empty() && self.carry.is_empty()
    }

    /// Releases window-loop scratch while the machine is quiescent between
    /// segments. Hundreds of thousands of machines persist across a
    /// full-scale run but only a day's worth are ever mid-session; the
    /// scratch regrows on the next admission, and capacity changes cannot
    /// affect results — only the resident footprint.
    fn shrink_scratch(&mut self) {
        debug_assert!(self.is_quiescent());
        self.active = ActiveSet::default();
        self.carry = VecDeque::new();
        self.outcome = MatchOutcome::default();
        self.needs_flaked = Vec::new();
    }

    /// Compacts a quiescent machine to its dormant form: scratch released,
    /// matcher reduced to its checkpoint word, the slot lookup dropped and
    /// the surviving accumulators trimmed to size. Everything discarded is
    /// derived state a checkpoint restore already recomputes, so dormancy
    /// cannot affect results — only the resident footprint. At full scale
    /// the slot table and matcher scratch dominate a quiescent machine, so
    /// this is the per-swarm RSS lever.
    fn freeze(&mut self) {
        self.shrink_scratch();
        if let MatcherSlot::Live(m) = &self.matcher {
            self.matcher = MatcherSlot::Dormant {
                word: m.checkpoint_word(),
            };
        }
        self.slot_of = HashMap::new();
        self.users.shrink_to_fit();
        self.user_acc.shrink_to_fit();
        self.daily.shrink_to_fit();
    }

    /// Reactivates a dormant machine, rebuilding the derived state
    /// [`SwarmSim::freeze`] dropped exactly as [`Simulator::resume`]
    /// rebuilds it from a snapshot: matcher from seed + restored word, slot
    /// lookup from the user list, membership sums marked stale. A live
    /// machine is untouched.
    fn thaw(&mut self, sim: &Simulator) {
        let MatcherSlot::Dormant { word } = self.matcher else {
            return;
        };
        let mut matcher = sim.config.matcher.build(self.matcher_seed);
        matcher.restore_word(word);
        self.matcher = MatcherSlot::Live(matcher);
        self.slot_of = self
            .users
            .iter()
            .enumerate()
            .map(|(slot, &u)| (u, slot as u32))
            .collect();
        self.sums_stale = true;
    }
}

/// Contiguous chunk offsets splitting `n` per-swarm states across workers
/// with mild over-partitioning for load balance: a [`parallel_map_slices`]
/// steal costs one lock per *chunk*, so chunking per state would pay one
/// lock per swarm per segment — hundreds of millions at full scale.
fn state_chunks(n: usize, workers: usize) -> Vec<usize> {
    const OVERPARTITION: usize = 8;
    let chunks = (workers.max(1) * OVERPARTITION).min(n.max(1));
    let per = n.div_ceil(chunks).max(1);
    let mut offsets: Vec<usize> = (0..).map(|i| i * per).take_while(|&o| o < n).collect();
    offsets.push(n);
    offsets
}

/// One spilled (sealed) day of a swarm's ledger, kept in the compact form
/// the final report needs: the [`crate::report::SwarmDay`] point is
/// `(day, demand_bytes, capacity)` where the capacity is a function of the
/// window counts alone, so the other ledger classes need not stay resident
/// per swarm — their sums live on in the run-level day × ISP cells.
#[derive(Debug, Clone, Copy, PartialEq)]
struct FrozenDay {
    day: u32,
    demand_bytes: u64,
    active_windows: u64,
    peer_windows: u64,
}

impl FrozenDay {
    /// The day's effective capacity, bit-identical to
    /// [`effective_capacity`] of the full ledger it was frozen from.
    fn capacity(&self) -> f64 {
        if self.active_windows == 0 {
            return 0.0;
        }
        let l_bar = self.peer_windows as f64 / self.active_windows as f64;
        consume_local_analytics::capacity_from_active_mean(l_bar)
    }
}

/// One swarm's persistent entry in a [`SegmentedRun`].
#[derive(Debug)]
struct SwarmState {
    key: SwarmKey,
    /// Sessions grouped into this swarm so far (the monolithic report's
    /// per-swarm session count, accumulated per segment).
    sessions: u64,
    /// Sealed days spilled out of the machine's `daily` list, day-ordered
    /// (see [`SegmentedRun::spill_sealed_days`]).
    frozen: Vec<FrozenDay>,
    swarm: SwarmSim,
}

impl std::fmt::Debug for SwarmSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwarmSim")
            .field("t", &self.t)
            .field("active", &self.active.len())
            .field("carry", &self.carry.len())
            .field("users", &self.users.len())
            .finish_non_exhaustive()
    }
}

/// An in-progress incremental simulation (see [`Simulator::begin`]):
/// persistent per-swarm window-loop machines, keyed and key-sorted,
/// advanced one watermarked session batch at a time.
///
/// Peak memory is the batch being fed plus the engine's own state
/// (active/carried sessions, accumulators and the growing report) — the
/// trace itself is never resident as a whole, which is what makes the
/// `large`/`full` presets runnable on one-day-sized memory
/// (`BENCH_5.json` tracks the measured peak RSS).
#[derive(Debug)]
pub struct SegmentedRun {
    sim: Simulator,
    horizon_secs: u64,
    population_len: usize,
    /// Key-sorted persistent per-swarm machines.
    states: Vec<SwarmState>,
    /// The time every pushed session so far starts strictly before, and no
    /// future session may start before (monotone).
    watermark: u64,
    /// Days already emitted by [`SegmentedRun::drain_closed_days`].
    closed_days: u64,
    /// Days whose per-swarm ledgers have been spilled (always ≤ the sealed
    /// day count; 0 with spill disabled). Every machine's `daily` list
    /// holds only days at or past this boundary.
    spilled_days: u64,
    /// The spilled days' accumulated day × ISP cells, `(day, isp)`-sorted
    /// and grouped — byte-identical to the prefix of the final report's
    /// `daily` list covering those days.
    spilled_cells: Vec<(u32, Option<IspId>, ByteLedger)>,
    /// Element-wise sort-key maxima folded across every pushed batch (see
    /// [`SessionStore::sort_key_maxima`]).
    max_start_secs: u64,
    max_user: u32,
    max_content: u32,
}

impl SegmentedRun {
    /// Feeds the next day's segment (day `N` on the `N`-th call, empty days
    /// included) — the day-granular convenience over
    /// [`SegmentedRun::push_batch`] with the day's end as the watermark.
    pub fn push_segment(&mut self, segment: &SessionStore) {
        let day = self.watermark / SegmentedStore::SEGMENT_SECS;
        self.push_batch(segment, (day + 1) * SegmentedStore::SEGMENT_SECS);
    }

    /// Feeds a batch of sessions and advances the watermark: every session
    /// in `batch` must start in `[previous watermark, watermark)`, and no
    /// later batch may contain a session starting before `watermark` — the
    /// [`SessionSource`] contract. Batches need not align to days (the
    /// online channel watermarks at its own cadence); empty batches are
    /// fine and just advance time.
    ///
    /// Grouping, machine upsert and the parallel fan-out are deterministic
    /// for any thread count, and any batch schedule of the same sessions
    /// produces byte-identical final output. A first batch that already
    /// covers the whole horizon takes the one-shot fast path: per-swarm
    /// work-stealing over the grouped store, exactly the shape the
    /// monolithic whole-store replay always had.
    ///
    /// # Panics
    ///
    /// Panics if `watermark` is below the previous watermark.
    pub fn push_batch(&mut self, batch: &SessionStore, watermark: u64) {
        assert!(
            watermark >= self.watermark,
            "watermark must be monotone: {watermark} < {}",
            self.watermark
        );
        debug_assert!(
            batch.is_empty()
                || (batch.start_secs()[0] >= self.watermark
                    && *batch.start_secs().last().expect("non-empty") < watermark),
            "batch sessions must start in [previous watermark, watermark)"
        );
        let (s, u, c) = batch.sort_key_maxima();
        self.max_start_secs = self.max_start_secs.max(s);
        self.max_user = self.max_user.max(u);
        self.max_content = self.max_content.max(c);

        let limit = watermark;
        let one_shot = self.states.is_empty() && self.watermark == 0 && limit >= self.horizon_secs;
        self.watermark = watermark;

        // 1. Group the batch's sessions into sub-swarms — the same shared
        //    grouping every path uses, so they can never diverge on keying
        //    or tie order.
        let (indices, groups) = group_by_swarm(&self.sim.config, batch);

        // One-shot fast path: the whole horizon in one batch (simulate on a
        // monolithic store, the sweep runner's shape). Per-swarm
        // work-stealing balances the head swarms' load better than the
        // chunked incremental fan-out, and groups come out key-ordered, so
        // the states land already sorted.
        if one_shot {
            let sim = &self.sim;
            let horizon = self.horizon_secs;
            self.states = parallel_map(groups.len(), sim.config.threads, |i| {
                let (key, range) = &groups[i];
                let idx = &indices[range.clone()];
                let first = idx[0] as usize;
                let mut swarm = SwarmSim::new(
                    sim,
                    *key,
                    batch.start_secs()[first],
                    batch.device()[first].bitrate_bps(),
                );
                swarm.advance(sim, batch, idx, u64::MAX, horizon);
                SwarmState {
                    key: *key,
                    sessions: idx.len() as u64,
                    frozen: Vec::new(),
                    swarm,
                }
            });
            return;
        }
        let segment = batch;

        // 2. Upsert machines: existing swarms count their new sessions, new
        //    keys get a machine initialised from their earliest session.
        let mut fresh: Vec<SwarmState> = Vec::new();
        for (key, range) in &groups {
            match self.states.binary_search_by(|s| s.key.cmp(key)) {
                Ok(idx) => self.states[idx].sessions += range.len() as u64,
                Err(_) => {
                    let first = indices[range.start] as usize;
                    fresh.push(SwarmState {
                        key: *key,
                        sessions: range.len() as u64,
                        frozen: Vec::new(),
                        swarm: SwarmSim::new(
                            &self.sim,
                            *key,
                            segment.start_secs()[first],
                            segment.device()[first].bitrate_bps(),
                        ),
                    });
                }
            }
        }
        if !fresh.is_empty() {
            self.states.extend(fresh);
            self.states.sort_by_key(|s| s.key);
        }

        // 3. Advance every machine with work, in parallel over disjoint
        //    per-state chunks (slot-ordered: the final state of every
        //    machine is independent of which thread ran it).
        let work: Vec<&[u32]> = self
            .states
            .iter()
            .map(|s| {
                groups
                    .binary_search_by(|(key, _)| key.cmp(&s.key))
                    .map(|g| &indices[groups[g].1.clone()])
                    .unwrap_or(&[])
            })
            .collect();
        let offsets = state_chunks(self.states.len(), self.sim.config.threads);
        let sim = &self.sim;
        let horizon = self.horizon_secs;
        let spill = sim.config.spill;
        parallel_map_slices(
            &mut self.states,
            &offsets,
            sim.config.threads,
            |ci, chunk| {
                let base = offsets[ci];
                for (j, state) in chunk.iter_mut().enumerate() {
                    let indices = work[base + j];
                    if indices.is_empty() && state.swarm.is_quiescent() {
                        continue;
                    }
                    state.swarm.advance(sim, segment, indices, limit, horizon);
                    if state.swarm.is_quiescent() {
                        if spill {
                            state.swarm.freeze();
                        } else {
                            state.swarm.shrink_scratch();
                        }
                    }
                }
            },
        );
        if spill {
            self.spill_sealed_days();
        }
    }

    /// Spills every newly sealed day out of the per-swarm machines: each
    /// sealed `(day, ledger)` entry is folded into the run-level day × ISP
    /// cells (commutative `u64` sums, so any fold order equals the final
    /// report's sort-and-merge bytes) and replaced by a compact
    /// [`FrozenDay`]. A day is sealed once the watermark passes its end —
    /// machines with pending work always advance to the watermark and
    /// later sessions start at or after it, so sealed entries can never
    /// grow again (the invariant [`SegmentedRun::drain_closed_days`]
    /// already relies on).
    fn spill_sealed_days(&mut self) {
        let spd = consume_local_trace::time::SECS_PER_DAY;
        let total_days = self.horizon_secs.div_ceil(spd);
        let sealed = if self.watermark >= self.horizon_secs {
            total_days
        } else {
            (self.watermark / spd).min(total_days)
        };
        if sealed <= self.spilled_days {
            return;
        }
        // Per swarm-day cells of this round, collected in state (= key)
        // order, then grouped exactly as `merge_outputs` groups the live
        // ones. Days only ever grow, so grouped rounds concatenate sorted.
        let mut cells: Vec<(u32, Option<IspId>, ByteLedger)> = Vec::new();
        for state in &mut self.states {
            let cut = state
                .swarm
                .daily
                .partition_point(|&(d, _)| u64::from(d) < sealed);
            for (day, ledger) in state.swarm.daily.drain(..cut) {
                state.frozen.push(FrozenDay {
                    day,
                    demand_bytes: ledger.demand_bytes,
                    active_windows: ledger.active_windows,
                    peer_windows: ledger.peer_windows,
                });
                cells.push((day, state.key.isp, ledger));
            }
        }
        cells.sort_by_key(|&(day, isp, _)| (day, isp));
        for (day, isp, ledger) in cells {
            match self.spilled_cells.last_mut() {
                Some(c) if c.0 == day && c.1 == isp => c.2.merge(&ledger),
                _ => self.spilled_cells.push((day, isp, ledger)),
            }
        }
        self.spilled_days = sealed;
    }

    /// Emits a [`DayClose`] for every day the current watermark has sealed
    /// but [`drain_closed_days`](Self::drain_closed_days) has not yet
    /// emitted, in day order. A day is sealed once the watermark reaches
    /// its end: every window of the day has then been processed (the
    /// machines advanced past it) and no future session can start inside
    /// it, so the day's ledger is final. Days the watermark never passes
    /// are emitted by [`SegmentedRun::finish_days`].
    pub fn drain_closed_days(&mut self, mut on_day_close: impl FnMut(DayClose)) {
        let spd = consume_local_trace::time::SECS_PER_DAY;
        let total_days = self.horizon_secs.div_ceil(spd);
        let sealed = if self.watermark >= self.horizon_secs {
            total_days
        } else {
            (self.watermark / spd).min(total_days)
        };
        while self.closed_days < sealed {
            let day = self.closed_days as u32;
            let mut ledger = ByteLedger::new();
            if self.closed_days < self.spilled_days {
                // The day's per-swarm entries were spilled: its grouped
                // cells hold the same sums (per-ISP instead of per-swarm —
                // `u64` addition makes the regrouping exact).
                let from = self.spilled_cells.partition_point(|&(d, _, _)| d < day);
                for (d, _, cell) in &self.spilled_cells[from..] {
                    if *d != day {
                        break;
                    }
                    ledger.merge(cell);
                }
            } else {
                // Each machine's `daily` list is day-sorted (days are
                // appended monotonically), so the day's entry is one binary
                // search away.
                for state in &self.states {
                    if let Ok(i) = state.swarm.daily.binary_search_by_key(&day, |e| e.0) {
                        ledger.merge(&state.swarm.daily[i].1);
                    }
                }
            }
            on_day_close(DayClose { day, ledger });
            self.closed_days += 1;
        }
    }

    /// Completes the run: drains any machine still holding active or
    /// carried sessions (a no-op when the pushed batches covered the whole
    /// horizon) and merges the per-swarm outputs into the final report,
    /// byte-identical to [`Simulator::simulate`] on a monolithic store of
    /// the same sessions.
    pub fn finish(self) -> SimReport {
        self.finish_days(|_| {})
    }

    /// Like [`SegmentedRun::finish`], additionally emitting a [`DayClose`]
    /// for every horizon day not yet drained — after the final drain, so
    /// the emitted ledgers account sessions running past the last
    /// watermark.
    pub fn finish_days(self, mut on_day_close: impl FnMut(DayClose)) -> SimReport {
        let SegmentedRun {
            sim,
            horizon_secs,
            population_len,
            mut states,
            closed_days,
            spilled_cells,
            max_start_secs,
            max_user,
            max_content,
            ..
        } = self;
        // Drain and extract in one parallel pass: `take_output` leaves each
        // machine empty, so the per-swarm user sort runs on the workers.
        let drain_store = SessionStore::from_records(&[], horizon_secs, 0);
        let offsets = state_chunks(states.len(), sim.config.threads);
        let chunked: Vec<Vec<(SwarmKey, u64, SwarmOutput)>> =
            parallel_map_slices(&mut states, &offsets, sim.config.threads, |_, chunk| {
                chunk
                    .iter_mut()
                    .map(|state| {
                        if !state.swarm.is_quiescent() {
                            state
                                .swarm
                                .advance(&sim, &drain_store, &[], u64::MAX, horizon_secs);
                        }
                        let mut out = state.swarm.take_output();
                        out.frozen = std::mem::take(&mut state.frozen);
                        (state.key, state.sessions, out)
                    })
                    .collect()
            });
        let parts: Vec<(SwarmKey, u64, SwarmOutput)> = chunked.into_iter().flatten().collect();

        // Close the days the watermark never sealed, from the final
        // (drained) per-swarm ledgers — chunk order is state order, so the
        // scan below sees each swarm's day-sorted list exactly once. Days
        // already spilled (but never drained) close from their grouped
        // cells; live `daily` lists hold only the days past the spill
        // boundary, so the two sources never overlap.
        let spd = consume_local_trace::time::SECS_PER_DAY;
        let total_days = horizon_secs.div_ceil(spd);
        if closed_days < total_days {
            let base = closed_days as usize;
            let mut ledgers = vec![ByteLedger::new(); (total_days - closed_days) as usize];
            let from = spilled_cells.partition_point(|&(d, _, _)| u64::from(d) < closed_days);
            for (day, _, cell) in &spilled_cells[from..] {
                ledgers[*day as usize - base].merge(cell);
            }
            for (_, _, out) in &parts {
                let from = out
                    .daily
                    .partition_point(|&(d, _)| u64::from(d) < closed_days);
                for (day, ledger) in &out.daily[from..] {
                    ledgers[*day as usize - base].merge(ledger);
                }
            }
            for (k, ledger) in ledgers.into_iter().enumerate() {
                on_day_close(DayClose {
                    day: (base + k) as u32,
                    ledger,
                });
            }
        }

        sim.merge_outputs(
            horizon_secs,
            population_len,
            parts,
            spilled_cells,
            sort_key_warnings((max_start_secs, max_user, max_content)),
        )
    }

    /// Drives the run to completion over `source` — the tail of
    /// [`Simulator::simulate_days`], callable on a run restored by
    /// [`Simulator::resume`]. The source must deliver exactly the sessions
    /// the original source would have delivered after the snapshot's
    /// watermark (see [`SegmentedRun::watermark`]); the result is then
    /// byte-identical to the uninterrupted run. Days closed before the
    /// snapshot are not re-emitted.
    pub fn simulate_remaining_days(
        mut self,
        source: impl SessionSource,
        mut on_day_close: impl FnMut(DayClose),
    ) -> SimReport {
        source.for_each_batch(&mut |batch, watermark| {
            self.push_batch(batch, watermark);
            self.drain_closed_days(&mut on_day_close);
        });
        self.finish_days(on_day_close)
    }

    /// The current watermark: every pushed session starts strictly before
    /// it, and a post-crash source must re-feed exactly the sessions
    /// starting at or after it.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// The run's horizon in seconds.
    pub fn horizon_secs(&self) -> u64 {
        self.horizon_secs
    }

    /// Serialises the run's complete resumable state as one versioned
    /// snapshot (see [`crate::checkpoint`] for the envelope): configuration
    /// and horizon, run-level counters, and every swarm machine —
    /// active-set columns, carried sessions, matcher state word,
    /// accumulated ledgers and per-user accounting. [`Simulator::resume`]
    /// inverts it; the restored run continues byte-identically.
    ///
    /// Call at a batch boundary (between [`SegmentedRun::push_batch`]
    /// calls) — mid-batch there is no coherent state to capture.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures as [`CheckpointError::Io`].
    pub fn checkpoint(&self, out: &mut impl Write) -> Result<(), CheckpointError> {
        let mut w = SnapshotWriter::new();
        put_config(&mut w, &self.sim.config);
        w.put_u64(self.horizon_secs);
        w.put_u64(self.population_len as u64);
        w.put_u64(self.watermark);
        w.put_u64(self.closed_days);
        w.put_u64(self.spilled_days);
        w.put_len(self.spilled_cells.len());
        for (day, isp, ledger) in &self.spilled_cells {
            w.put_u32(*day);
            match isp {
                Some(isp) => {
                    w.put_bool(true);
                    w.put_u8(isp.0);
                }
                None => w.put_bool(false),
            }
            put_ledger(&mut w, ledger);
        }
        w.put_u64(self.max_start_secs);
        w.put_u32(self.max_user);
        w.put_u32(self.max_content);
        w.put_len(self.states.len());
        for state in &self.states {
            put_key(&mut w, &state.key);
            w.put_u64(state.sessions);
            w.put_len(state.frozen.len());
            for f in &state.frozen {
                w.put_u32(f.day);
                w.put_u64(f.demand_bytes);
                w.put_u64(f.active_windows);
                w.put_u64(f.peer_windows);
            }
            put_swarm(&mut w, &state.swarm);
        }
        w.finish(out)
    }
}

impl Simulator {
    /// Rebuilds a [`SegmentedRun`] from a snapshot written by
    /// [`SegmentedRun::checkpoint`]. The restored run is byte-equivalent to
    /// the one that was checkpointed: feeding it the batches the original
    /// would have received after the snapshot's watermark (at any batch
    /// schedule or thread count) yields the exact report of the
    /// uninterrupted run.
    ///
    /// Derived state the snapshot omits — matcher scratch, cached
    /// membership sums, slot lookup tables, the edge-cache membership bit —
    /// is recomputed here; none of it affects outcomes (pinned by
    /// `tests/recovery.rs`).
    ///
    /// # Errors
    ///
    /// Any [`CheckpointError`]: envelope violations from the reader,
    /// [`CheckpointError::Corrupt`] for structurally invalid payloads
    /// (unknown tags, out-of-order keys, dangling slot references, an
    /// invalid configuration).
    pub fn resume(input: &mut impl Read) -> Result<SegmentedRun, CheckpointError> {
        let mut r = SnapshotReader::from_reader(input)?;
        let config = take_config(&mut r)?;
        let sim = Simulator::try_new(config)
            .map_err(|_| CheckpointError::Corrupt("invalid configuration"))?;
        let horizon_secs = r.take_u64("horizon")?;
        let population_len = r.take_u64("population length")?;
        if population_len > 1 << 32 {
            return Err(CheckpointError::Corrupt("population length out of bounds"));
        }
        let watermark = r.take_u64("watermark")?;
        let closed_days = r.take_u64("closed days")?;
        let spilled_days = r.take_u64("spilled days")?;
        let cells = r.take_len("spilled cell count")?;
        let mut spilled_cells = Vec::with_capacity(cells);
        let mut prev_cell: Option<(u32, Option<IspId>)> = None;
        for _ in 0..cells {
            let day = r.take_u32("spilled cell day")?;
            if u64::from(day) >= spilled_days {
                return Err(CheckpointError::Corrupt("spilled cell past boundary"));
            }
            let isp = if r.take_bool("spilled cell isp flag")? {
                Some(IspId(r.take_u8("spilled cell isp")?))
            } else {
                None
            };
            if prev_cell.is_some_and(|p| p >= (day, isp)) {
                return Err(CheckpointError::Corrupt("spilled cells out of order"));
            }
            prev_cell = Some((day, isp));
            spilled_cells.push((day, isp, take_ledger(&mut r)?));
        }
        let max_start_secs = r.take_u64("sort-key maxima")?;
        let max_user = r.take_u32("sort-key maxima")?;
        let max_content = r.take_u32("sort-key maxima")?;
        let n = r.take_len("swarm count")?;
        let mut states = Vec::with_capacity(n);
        let mut prev: Option<SwarmKey> = None;
        for _ in 0..n {
            let key = take_key(&mut r)?;
            if prev.is_some_and(|p| p >= key) {
                return Err(CheckpointError::Corrupt("swarm keys out of order"));
            }
            prev = Some(key);
            let sessions = r.take_u64("swarm session count")?;
            let frozen_len = r.take_len("frozen day count")?;
            let mut frozen = Vec::with_capacity(frozen_len);
            let mut prev_day: Option<u32> = None;
            for _ in 0..frozen_len {
                let day = r.take_u32("frozen day index")?;
                if u64::from(day) >= spilled_days || prev_day.is_some_and(|p| p >= day) {
                    return Err(CheckpointError::Corrupt("frozen days out of order"));
                }
                prev_day = Some(day);
                frozen.push(FrozenDay {
                    day,
                    demand_bytes: r.take_u64("frozen day")?,
                    active_windows: r.take_u64("frozen day")?,
                    peer_windows: r.take_u64("frozen day")?,
                });
            }
            let swarm = take_swarm(&mut r, &sim, &key)?;
            states.push(SwarmState {
                key,
                sessions,
                frozen,
                swarm,
            });
        }
        r.finish()?;
        Ok(SegmentedRun {
            sim,
            horizon_secs,
            population_len: population_len as usize,
            states,
            watermark,
            closed_days,
            spilled_days,
            spilled_cells,
            max_start_secs,
            max_user,
            max_content,
        })
    }
}

// --- Snapshot payload codec -------------------------------------------------
//
// The field-by-field layout behind `SegmentedRun::checkpoint` /
// `Simulator::resume`. Every `put_*` below has its exactly-inverse `take_*`;
// the envelope (magic, version, digest) lives in `crate::checkpoint`.
// Bumping `SNAPSHOT_VERSION` is required for any layout change here.

fn put_config(w: &mut SnapshotWriter, c: &SimConfig) {
    w.put_u64(c.window_secs);
    match c.upload {
        UploadModel::Ratio(r) => {
            w.put_u8(0);
            w.put_f64(r);
        }
        UploadModel::AbsoluteBps(q) => {
            w.put_u8(1);
            w.put_u32(q);
        }
    }
    w.put_bool(c.policy.split_by_isp);
    w.put_bool(c.policy.split_by_bitrate);
    w.put_u8(match c.matcher {
        MatcherKind::Hierarchical => 0,
        MatcherKind::Random => 1,
    });
    w.put_u64(c.seed);
    w.put_u64(c.threads as u64);
    w.put_f64(c.preload_fraction);
    match c.edge_cache {
        Some(cache) => {
            w.put_bool(true);
            w.put_u32(cache.top_items);
        }
        None => w.put_bool(false),
    }
    w.put_f64(c.participation_rate);
    w.put_f64(c.cooperation_rate);
    w.put_bool(c.spill);
}

fn take_config(r: &mut SnapshotReader) -> Result<SimConfig, CheckpointError> {
    let window_secs = r.take_u64("window length")?;
    let upload = match r.take_u8("upload model tag")? {
        0 => UploadModel::Ratio(r.take_f64("upload ratio")?),
        1 => UploadModel::AbsoluteBps(r.take_u32("upload bandwidth")?),
        _ => return Err(CheckpointError::Corrupt("unknown upload model tag")),
    };
    let policy = SwarmPolicy {
        split_by_isp: r.take_bool("policy")?,
        split_by_bitrate: r.take_bool("policy")?,
    };
    let matcher = match r.take_u8("matcher tag")? {
        0 => MatcherKind::Hierarchical,
        1 => MatcherKind::Random,
        _ => return Err(CheckpointError::Corrupt("unknown matcher tag")),
    };
    let seed = r.take_u64("seed")?;
    let threads = r.take_u64("threads")?;
    if threads == 0 || threads > 4096 {
        return Err(CheckpointError::Corrupt("thread count out of bounds"));
    }
    let preload_fraction = r.take_f64("preload fraction")?;
    let edge_cache = if r.take_bool("edge cache flag")? {
        Some(EdgeCache {
            top_items: r.take_u32("edge cache items")?,
        })
    } else {
        None
    };
    let participation_rate = r.take_f64("participation rate")?;
    let cooperation_rate = r.take_f64("cooperation rate")?;
    let spill = r.take_bool("spill flag")?;
    Ok(SimConfig {
        window_secs,
        upload,
        policy,
        matcher,
        seed,
        threads: threads as usize,
        preload_fraction,
        edge_cache,
        participation_rate,
        cooperation_rate,
        spill,
    })
}

fn put_key(w: &mut SnapshotWriter, key: &SwarmKey) {
    w.put_u32(key.content.0);
    match key.isp {
        Some(isp) => {
            w.put_bool(true);
            w.put_u8(isp.0);
        }
        None => w.put_bool(false),
    }
    match key.bitrate {
        Some(b) => {
            w.put_bool(true);
            w.put_u32(b.bps());
        }
        None => w.put_bool(false),
    }
}

fn take_key(r: &mut SnapshotReader) -> Result<SwarmKey, CheckpointError> {
    let content = ContentId(r.take_u32("swarm content")?);
    let isp = if r.take_bool("swarm isp flag")? {
        Some(IspId(r.take_u8("swarm isp")?))
    } else {
        None
    };
    let bitrate = if r.take_bool("swarm bitrate flag")? {
        Some(BitrateClass(r.take_u32("swarm bitrate")?))
    } else {
        None
    };
    Ok(SwarmKey {
        content,
        isp,
        bitrate,
    })
}

fn put_ledger(w: &mut SnapshotWriter, l: &ByteLedger) {
    w.put_u64(l.demand_bytes);
    w.put_u64(l.server_bytes);
    for &v in &l.peer_bytes_by_layer {
        w.put_u64(v);
    }
    w.put_u64(l.cache_bytes);
    w.put_u64(l.preload_bytes);
    w.put_u64(l.active_windows);
    w.put_u64(l.peer_windows);
}

fn take_ledger(r: &mut SnapshotReader) -> Result<ByteLedger, CheckpointError> {
    let mut l = ByteLedger::new();
    l.demand_bytes = r.take_u64("ledger")?;
    l.server_bytes = r.take_u64("ledger")?;
    for v in &mut l.peer_bytes_by_layer {
        *v = r.take_u64("ledger")?;
    }
    l.cache_bytes = r.take_u64("ledger")?;
    l.preload_bytes = r.take_u64("ledger")?;
    l.active_windows = r.take_u64("ledger")?;
    l.peer_windows = r.take_u64("ledger")?;
    Ok(l)
}

fn put_peer(w: &mut SnapshotWriter, p: &Peer) {
    w.put_u8(p.isp.0);
    w.put_u32(p.location.exchange().0);
    w.put_u32(p.location.pop().0);
}

fn take_peer(r: &mut SnapshotReader) -> Result<Peer, CheckpointError> {
    let isp = IspId(r.take_u8("peer isp")?);
    let exchange = ExchangeId(r.take_u32("peer exchange")?);
    let pop = PopId(r.take_u32("peer pop")?);
    Ok(Peer {
        isp,
        location: UserLocation::from_raw_parts(exchange, pop),
    })
}

fn put_swarm(w: &mut SnapshotWriter, s: &SwarmSim) {
    w.put_u64(s.matcher.word());
    w.put_u64(s.t.as_secs());
    w.put_f64(s.upload_ratio);
    put_ledger(w, &s.ledger);
    w.put_u64(s.degradation.failed_transfer_bytes);
    for &v in &s.degradation.failed_by_layer {
        w.put_u64(v);
    }
    w.put_u64(s.degradation.defection_windows);
    w.put_u64(s.degradation.failed_demand_bytes);
    w.put_len(s.daily.len());
    for (day, ledger) in &s.daily {
        w.put_u32(*day);
        put_ledger(w, ledger);
    }
    w.put_len(s.users.len());
    for &u in &s.users {
        w.put_u32(u);
    }
    for &(watched, uploaded) in &s.user_acc {
        w.put_u64(watched);
        w.put_u64(uploaded);
    }
    w.put_len(s.active.len());
    for &v in &s.active.ends {
        w.put_u64(v);
    }
    for &v in &s.active.user_slots {
        w.put_u32(v);
    }
    for p in &s.active.peers {
        put_peer(w, p);
    }
    for &v in &s.active.full_demands {
        w.put_u64(v);
    }
    for &v in &s.active.demands {
        w.put_u64(v);
    }
    for &v in &s.active.preloads {
        w.put_u64(v);
    }
    for &v in &s.active.needs {
        w.put_u64(v);
    }
    for &v in &s.active.budgets {
        w.put_u64(v);
    }
    w.put_len(s.carry.len());
    for p in &s.carry {
        w.put_u64(p.start);
        w.put_u64(p.end);
        w.put_u32(p.user);
        w.put_u32(p.bitrate_bps);
        w.put_u8(p.isp.0);
        w.put_u32(p.location.exchange().0);
        w.put_u32(p.location.pop().0);
    }
}

fn take_swarm(
    r: &mut SnapshotReader,
    sim: &Simulator,
    key: &SwarmKey,
) -> Result<SwarmSim, CheckpointError> {
    let word = r.take_u64("matcher word")?;
    let t = r.take_u64("window boundary")?;
    let upload_ratio = r.take_f64("upload ratio")?;
    let ledger = take_ledger(r)?;
    let degradation = Degradation {
        failed_transfer_bytes: r.take_u64("degradation")?,
        failed_by_layer: [
            r.take_u64("degradation")?,
            r.take_u64("degradation")?,
            r.take_u64("degradation")?,
        ],
        defection_windows: r.take_u64("degradation")?,
        failed_demand_bytes: r.take_u64("degradation")?,
    };

    let daily_len = r.take_len("daily ledgers")?;
    let mut daily = Vec::with_capacity(daily_len);
    let mut prev_day: Option<u32> = None;
    for _ in 0..daily_len {
        let day = r.take_u32("day index")?;
        if prev_day.is_some_and(|p| p >= day) {
            return Err(CheckpointError::Corrupt("daily ledgers out of order"));
        }
        prev_day = Some(day);
        daily.push((day, take_ledger(r)?));
    }

    let users_len = r.take_len("user list")?;
    let mut users = Vec::with_capacity(users_len);
    for _ in 0..users_len {
        users.push(r.take_u32("user id")?);
    }
    let mut user_acc = Vec::with_capacity(users_len);
    for _ in 0..users_len {
        user_acc.push((r.take_u64("watched bytes")?, r.take_u64("uploaded bytes")?));
    }
    let mut slot_of = HashMap::with_capacity(users_len);
    for (slot, &u) in users.iter().enumerate() {
        if slot_of.insert(u, slot as u32).is_some() {
            return Err(CheckpointError::Corrupt("duplicate user id"));
        }
    }

    let active_len = r.take_len("active set")?;
    let mut active = ActiveSet::default();
    for _ in 0..active_len {
        active.ends.push(r.take_u64("active ends")?);
    }
    for _ in 0..active_len {
        let slot = r.take_u32("active user slots")?;
        if slot as usize >= users.len() {
            return Err(CheckpointError::Corrupt("user slot out of bounds"));
        }
        active.user_slots.push(slot);
    }
    for _ in 0..active_len {
        active.peers.push(take_peer(r)?);
    }
    for _ in 0..active_len {
        active.full_demands.push(r.take_u64("active demands")?);
    }
    for _ in 0..active_len {
        active.demands.push(r.take_u64("active demands")?);
    }
    for _ in 0..active_len {
        active.preloads.push(r.take_u64("active preloads")?);
    }
    for _ in 0..active_len {
        active.needs.push(r.take_u64("active needs")?);
    }
    for _ in 0..active_len {
        active.budgets.push(r.take_u64("active budgets")?);
    }
    active.min_end = active.ends.iter().copied().min().unwrap_or(u64::MAX);

    let carry_len = r.take_len("carry buffer")?;
    let mut carry = VecDeque::with_capacity(carry_len);
    for _ in 0..carry_len {
        let start = r.take_u64("carry start")?;
        let end = r.take_u64("carry end")?;
        let user = r.take_u32("carry user")?;
        let bitrate_bps = r.take_u32("carry bitrate")?;
        let isp = IspId(r.take_u8("carry isp")?);
        let exchange = ExchangeId(r.take_u32("carry exchange")?);
        let pop = PopId(r.take_u32("carry pop")?);
        if carry
            .back()
            .is_some_and(|p: &PendingSession| p.start > start)
        {
            return Err(CheckpointError::Corrupt("carry buffer out of order"));
        }
        carry.push_back(PendingSession {
            start,
            end,
            user,
            bitrate_bps,
            isp,
            location: UserLocation::from_raw_parts(exchange, pop),
        });
    }

    let matcher_seed = swarm_seed(sim.config.seed, key);
    let mut matcher = sim.config.matcher.build(matcher_seed);
    matcher.restore_word(word);
    Ok(SwarmSim {
        matcher: MatcherSlot::Live(matcher),
        matcher_seed,
        active,
        t: SimTime(t),
        carry,
        slot_of,
        users,
        user_acc,
        ledger,
        daily,
        upload_ratio,
        cached: sim
            .config
            .edge_cache
            .is_some_and(|c| key.content.0 < c.top_items),
        sums_stale: true,
        preload_total: 0,
        swarm_demand: 0,
        ineligible: 0,
        outcome: MatchOutcome::default(),
        defect_seed: swarm_seed(sim.config.seed ^ DEFECT_STREAM_TAG, key),
        recv_defect_seed: swarm_seed(sim.config.seed ^ RECV_DEFECT_STREAM_TAG, key),
        needs_flaked: Vec::new(),
        degradation,
    })
}

/// Scatters the per-swarm `(user, watched, uploaded)` lists into the dense
/// per-user traffic vector, fanned out over disjoint contiguous user-id
/// ranges via [`parallel_map_slices`]. Each list is user-sorted, so every
/// range applies exactly its own sub-slice of every list; all additions for
/// a given user happen on one thread, in swarm-key order — the result is
/// **byte-identical for any worker count** (pinned in
/// `tests/determinism.rs`). This was the last serial piece of the engine's
/// merge phase.
fn scatter_users(
    population_len: usize,
    parts: &[(SwarmKey, u64, SwarmOutput)],
    workers: usize,
) -> Vec<UserTraffic> {
    let mut users = vec![UserTraffic::default(); population_len];
    if population_len == 0 {
        return users;
    }
    let workers = workers.max(1).min(population_len);
    let chunk = population_len.div_ceil(workers);
    let offsets: Vec<usize> = (0..=workers)
        .map(|w| (w * chunk).min(population_len))
        .collect();
    parallel_map_slices(&mut users, &offsets, workers, |ci, slice| {
        let lo = offsets[ci];
        let hi = offsets[ci + 1];
        for (_, _, out) in parts {
            let list = &out.users;
            let a = list.partition_point(|&(u, _, _)| (u as usize) < lo);
            let b = a + list[a..].partition_point(|&(u, _, _)| (u as usize) < hi);
            for &(u, watched, uploaded) in &list[a..b] {
                let t = &mut slice[u as usize - lo];
                t.watched_bytes += watched;
                t.uploaded_bytes += uploaded;
            }
        }
    });
    users
}

/// Groups a store's sessions into sub-swarms with one stable key sort
/// instead of a `HashMap<SwarmKey, Vec<u32>>` rebuild: ties keep the
/// trace's canonical start order (so within a swarm, indices stay
/// start-ordered — the window loop's admission invariant) and swarms come
/// out already key-ordered. Keys are assembled straight from the
/// content/ISP/device columns. Every batch of [`SegmentedRun::push_batch`]
/// goes through it: the grouping is part of the byte-identity contract
/// between the monolithic and batch-sequential paths, so it must have
/// exactly one definition.
#[allow(clippy::type_complexity)]
fn group_by_swarm(
    config: &SimConfig,
    store: &SessionStore,
) -> (Vec<u32>, Vec<(SwarmKey, std::ops::Range<usize>)>) {
    let content = store.content();
    let isp = store.isp();
    let mut keyed_sessions: Vec<(SwarmKey, u32)> = (0..store.len())
        .map(|i| {
            let key =
                config
                    .policy
                    .key_parts(ContentId(content[i]), isp[i], store.bitrate_class(i));
            (key, i as u32)
        })
        .collect();
    keyed_sessions.sort_by_key(|&(key, _)| key);
    let indices: Vec<u32> = keyed_sessions.iter().map(|&(_, i)| i).collect();
    let mut groups: Vec<(SwarmKey, std::ops::Range<usize>)> = Vec::new();
    let mut start = 0usize;
    while start < keyed_sessions.len() {
        let key = keyed_sessions[start].0;
        let mut end = start + 1;
        while end < keyed_sessions.len() && keyed_sessions[end].0 == key {
            end += 1;
        }
        groups.push((key, start..end));
        start = end;
    }
    (indices, groups)
}

/// Window-aligned ceiling: the first window boundary at or after `secs`.
fn align_up(secs: u64, dt: u64) -> u64 {
    secs.div_ceil(dt) * dt
}

/// Deterministic participation membership: the same user participates (or
/// not) in every swarm, run and configuration with the same rate.
fn participates(user: u32, rate: f64) -> bool {
    if rate >= 1.0 {
        return true;
    }
    // splitmix64 of the user id → uniform in [0, 1).
    let mut x = u64::from(user).wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x as f64 / u64::MAX as f64) < rate
}

/// Domain-separation tag mixed into the base seed for the defection
/// stream, so defection coins never correlate with the random matcher's
/// stream even for the same swarm key.
const DEFECT_STREAM_TAG: u64 = 0x5afe_c0de_d15c_0bed;

/// Domain-separation tag for the receiver-side flake stream: whether a
/// defecting user's *demand* flakes in a window is independent of whether
/// its *uploads* fail (both coins share the counter-hash construction of
/// [`defects`] but never the seed).
const RECV_DEFECT_STREAM_TAG: u64 = 0x5afe_c0de_00f1_a4ed;

/// Deterministic defection coin for `(swarm, user, window)`: `true` when a
/// matched uploader silently fails to deliver this window's bytes.
///
/// Like [`participates`], this is a counter-based hash rather than a
/// stateful RNG: the coin depends only on the swarm's defection seed, the
/// user id and the window start, so it is identical across thread counts,
/// segment boundaries and the online replay path — no draw-order to keep
/// in sync.
fn defects(seed: u64, user: u32, window_start_secs: u64, cooperation: f64) -> bool {
    if cooperation >= 1.0 {
        return false;
    }
    let mut x = seed
        ^ u64::from(user).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ window_start_secs.wrapping_mul(0xd1b5_4a32_d192_ed03);
    // splitmix64 finaliser → uniform in [0, 1).
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x as f64 / u64::MAX as f64) >= cooperation
}

/// The ledger's effective M/M/∞ capacity: while-active mean occupancy
/// inverted through `L̄ = c/(1 − e^(−c))`.
fn effective_capacity(ledger: &ByteLedger) -> f64 {
    if ledger.active_windows == 0 {
        return 0.0;
    }
    let l_bar = ledger.peer_windows as f64 / ledger.active_windows as f64;
    consume_local_analytics::capacity_from_active_mean(l_bar)
}

/// Deterministic per-swarm seed for the (optionally random) matcher, so the
/// result does not depend on which worker thread picks the swarm up.
fn swarm_seed(base: u64, key: &SwarmKey) -> u64 {
    let mut x = base ^ (u64::from(key.content.0) << 1);
    if let Some(isp) = key.isp {
        x ^= (u64::from(isp.0) + 1) << 40;
    }
    if let Some(b) = key.bitrate {
        x ^= u64::from(b.bps()) << 16;
    }
    // splitmix64 finaliser
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[derive(Debug, Default)]
struct SwarmOutput {
    ledger: ByteLedger,
    /// Days spilled while the run was in flight, preceding every `daily`
    /// entry (empty on the monolithic path and with spill disabled).
    frozen: Vec<FrozenDay>,
    daily: Vec<(u32, ByteLedger)>,
    users: Vec<(u32, u64, u64)>,
    upload_ratio: f64,
    degradation: Degradation,
}

/// One active session with its per-window quantities precomputed at join
/// time (they are constant for the session's lifetime).
///
/// Test-only: the production window loop keeps these quantities as the
/// parallel columns of [`ActiveSet`]; this row shape survives solely for the
/// reference path ([`Simulator::run_store_rows`]) the SoA loop is
/// property-tested against.
#[cfg(test)]
#[derive(Debug, Clone, Copy)]
struct ActiveSession {
    end: SimTime,
    /// Rank of the session's user among the swarm's sorted distinct users.
    user_slot: u32,
    peer: Peer,
    /// Full per-window demand `β·Δτ/8` in bytes, preload included.
    full_demand: u64,
    /// In-swarm per-window demand (full demand minus the preloaded part).
    demand: u64,
    /// Per-window bytes served by predictive preloading.
    preload: u64,
    /// Peer-receivable cap `min(demand, q·Δτ/8)`.
    need: u64,
    /// Per-window upload budget (0 for non-participants).
    budget: u64,
}

#[cfg(test)]
impl Simulator {
    /// The pre-SoA row-based window loop, kept verbatim as the oracle for
    /// property tests: materialises [`ActiveSession`] rows and rebuilds the
    /// matcher's peer/need/budget inputs every window.
    fn simulate_swarm_rows(
        &self,
        key: SwarmKey,
        indices: &[u32],
        store: &SessionStore,
    ) -> SwarmOutput {
        let dt = self.config.window_secs;
        let starts_col = store.start_secs();
        let durations_col = store.duration_secs();
        let users_col = store.user();
        let devices_col = store.device();
        let isps_col = store.isp();
        let locations_col = store.location();
        let mut matcher = self
            .config
            .matcher
            .build(swarm_seed(self.config.seed, &key));

        let mut out = SwarmOutput::default();
        let mut swarm_users: Vec<u32> = indices.iter().map(|&i| users_col[i as usize]).collect();
        swarm_users.sort_unstable();
        swarm_users.dedup();
        let mut user_acc: Vec<(u64, u64)> = vec![(0, 0); swarm_users.len()];

        let first_bitrate = devices_col[indices[0] as usize].bitrate_bps();
        out.upload_ratio = self.config.upload.ratio_for(first_bitrate).min(1.0);

        let preload_f = self.config.preload_fraction;
        let cached = self
            .config
            .edge_cache
            .is_some_and(|c| key.content.0 < c.top_items);

        let mut active: Vec<ActiveSession> = Vec::new();
        let mut cursor = store.cursor(indices);
        let mut t = SimTime(align_up(starts_col[indices[0] as usize], dt));
        let horizon = SimTime(store.horizon_secs());

        let mut peers: Vec<Peer> = Vec::new();
        let mut needs: Vec<u64> = Vec::new();
        let mut budgets: Vec<u64> = Vec::new();
        let mut outcome = MatchOutcome::default();

        while t < horizon {
            active.retain(|a| a.end > t);
            cursor.admit_until(t.as_secs(), |i| {
                let end = SimTime(starts_col[i] + u64::from(durations_col[i]));
                if end > t {
                    let bitrate = devices_col[i].bitrate_bps();
                    let user = users_col[i];
                    let full_demand = u64::from(bitrate) * dt / 8;
                    let preload = (full_demand as f64 * preload_f) as u64;
                    let demand = full_demand - preload;
                    let nominal_budget = self.config.upload.budget_bytes(bitrate, dt);
                    let budget = if participates(user, self.config.participation_rate) {
                        nominal_budget
                    } else {
                        0
                    };
                    let user_slot = swarm_users
                        .binary_search(&user)
                        .expect("swarm_users indexes every session user")
                        as u32;
                    active.push(ActiveSession {
                        end,
                        user_slot,
                        peer: Peer {
                            isp: isps_col[i],
                            location: locations_col[i],
                        },
                        full_demand,
                        demand,
                        preload,
                        need: demand.min(nominal_budget),
                        budget,
                    });
                }
            });
            if active.is_empty() {
                let Some(next_start) = cursor.next_start_secs() else {
                    break;
                };
                t = SimTime(align_up(next_start, dt).max(t.as_secs() + dt));
                continue;
            }

            peers.clear();
            needs.clear();
            budgets.clear();
            let mut preload_total = 0u64;
            let mut swarm_demand = 0u64;
            let mut ineligible = 0u64;
            for (k, a) in active.iter().enumerate() {
                preload_total += a.preload;
                swarm_demand += a.demand;
                ineligible += if k == 0 { a.demand } else { a.demand - a.need };
                peers.push(a.peer);
                needs.push(a.need);
                budgets.push(a.budget);
            }
            // Mirror of the SoA loop's receiver-side flaking: a defecting
            // receiver's need is zeroed before matching and its deferred
            // demand lands in the fallback.
            let recv_defect_seed = swarm_seed(self.config.seed ^ RECV_DEFECT_STREAM_TAG, &key);
            let cooperation = self.config.cooperation_rate;
            let mut failed_demand = 0u64;
            for (k, a) in active.iter().enumerate().skip(1) {
                let user = swarm_users[a.user_slot as usize];
                if needs[k] > 0 && defects(recv_defect_seed, user, t.as_secs(), cooperation) {
                    failed_demand += needs[k];
                    needs[k] = 0;
                }
            }
            matcher.match_window_into(&peers, &needs, &budgets, 0, &mut outcome);

            // Mirror of the SoA loop's fault injection, keyed on the same
            // (swarm, user id, window) coin.
            let defect_seed = swarm_seed(self.config.seed ^ DEFECT_STREAM_TAG, &key);
            let mut failed_total = 0u64;
            let mut failed_by_layer = [0u64; 3];
            for (k, a) in active.iter().enumerate() {
                let acc = &mut user_acc[a.user_slot as usize];
                acc.0 += a.full_demand;
                let uploaded = outcome.per_peer[k].uploaded;
                let user = swarm_users[a.user_slot as usize];
                if uploaded > 0 && defects(defect_seed, user, t.as_secs(), cooperation) {
                    failed_total += uploaded;
                    for (f, u) in failed_by_layer
                        .iter_mut()
                        .zip(outcome.per_peer[k].uploaded_by_layer)
                    {
                        *f += u;
                    }
                } else {
                    acc.1 += uploaded;
                }
            }
            if failed_total > 0 || failed_demand > 0 {
                out.degradation.merge(&Degradation {
                    failed_transfer_bytes: failed_total,
                    failed_by_layer,
                    defection_windows: 1,
                    failed_demand_bytes: failed_demand,
                });
            }

            let demand_total = swarm_demand + preload_total;
            let fallback = ineligible + failed_demand + outcome.server_bytes + failed_total;
            let (server_total, cache_total, preload_srv, preload_cache) = if cached {
                (0, fallback, 0, preload_total)
            } else {
                (fallback, 0, preload_total, 0)
            };

            let mut peer_bytes_by_layer = outcome.peer_bytes_by_layer;
            for (p, f) in peer_bytes_by_layer.iter_mut().zip(failed_by_layer) {
                *p -= f;
            }
            let mut window_ledger = ByteLedger {
                demand_bytes: demand_total,
                server_bytes: server_total + preload_srv,
                peer_bytes_by_layer,
                cache_bytes: cache_total + preload_cache,
                preload_bytes: 0,
                active_windows: 1,
                peer_windows: active.len() as u64,
            };
            if !cached {
                window_ledger.server_bytes -= preload_srv;
                window_ledger.preload_bytes = preload_srv;
            }

            out.ledger.merge(&window_ledger);
            let day = (t.as_secs() / consume_local_trace::time::SECS_PER_DAY) as u32;
            match out.daily.last_mut() {
                Some((d, ledger)) if *d == day => ledger.merge(&window_ledger),
                _ => {
                    out.daily.push((day, std::mem::take(&mut window_ledger)));
                }
            }

            t = t + dt;
        }

        out.users = swarm_users
            .into_iter()
            .zip(user_acc)
            .filter(|&(_, acc)| acc != (0, 0))
            .map(|(u, (w, up))| (u, w, up))
            .collect();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consume_local_energy::EnergyParams;
    use consume_local_swarm::MatcherKind;
    use consume_local_topology::{ExchangeId, IspId, IspTopology};
    use consume_local_trace::device::DeviceClass;
    use consume_local_trace::{ContentId, SessionRecord, TraceConfig, TraceGenerator, UserId};

    fn tiny_trace() -> Trace {
        TraceGenerator::new(TraceConfig::london_sep2013().scaled(0.0003).unwrap(), 11)
            .generate()
            .unwrap()
    }

    /// A hand-built trace: two users, same ISP/exchange/bitrate, overlapping
    /// sessions on one item.
    fn pair_trace(offset_secs: u64) -> Trace {
        let base = TraceGenerator::new(TraceConfig::london_sep2013().scaled(0.0002).unwrap(), 3)
            .generate()
            .unwrap();
        let topo = IspTopology::london_table3().unwrap();
        let loc = topo.location_of(ExchangeId(5));
        let mk = |user: u32, start: u64| SessionRecord {
            user: UserId(user),
            content: ContentId(0),
            start: SimTime(start),
            duration_secs: 600,
            device: DeviceClass::Desktop,
            isp: IspId(0),
            location: loc,
        };
        Trace::from_parts(
            base.config().clone(),
            base.catalogue().clone(),
            base.population().clone(),
            vec![mk(0, 0), mk(1, offset_secs)],
        )
    }

    #[test]
    fn lone_viewer_gets_everything_from_server() {
        let trace = pair_trace(100_000); // sessions never overlap
        let report = Simulator::new(SimConfig::default()).simulate(&trace);
        assert_eq!(report.total.peer_bytes(), 0);
        assert_eq!(report.total.server_bytes, report.total.demand_bytes);
        assert_eq!(report.total_savings(&EnergyParams::valancius()), Some(0.0));
        report.check_conservation().unwrap();
    }

    #[test]
    fn overlapping_pair_shares_locally() {
        let trace = pair_trace(0); // full overlap
        let report = Simulator::new(SimConfig::default()).simulate(&trace);
        // Each 10 s window: fetcher from server, peer 1 fully from peer 0.
        let demand = report.total.demand_bytes;
        assert_eq!(report.total.peer_bytes(), demand / 2);
        assert_eq!(
            report.total.peer_bytes_by_layer[0],
            demand / 2,
            "all at ExP"
        );
        // User 1 downloaded from peers; user 0 uploaded everything.
        assert_eq!(report.users[0].uploaded_bytes, demand / 2);
        assert_eq!(report.users[1].uploaded_bytes, 0);
        report.check_conservation().unwrap();
    }

    #[test]
    fn partial_overlap_shares_partially() {
        let trace = pair_trace(300); // half overlap
        let report = Simulator::new(SimConfig::default()).simulate(&trace);
        let peer = report.total.peer_bytes();
        assert!(peer > 0);
        assert!(peer < report.total.demand_bytes / 2);
        report.check_conservation().unwrap();
    }

    #[test]
    fn upload_ratio_caps_offload() {
        let trace = pair_trace(0);
        let full = Simulator::new(SimConfig::with_ratio(1.0)).simulate(&trace);
        let half = Simulator::new(SimConfig::with_ratio(0.5)).simulate(&trace);
        assert!((half.total.offload_share() / full.total.offload_share() - 0.5).abs() < 0.01);
    }

    #[test]
    fn conservation_on_generated_trace() {
        let trace = tiny_trace();
        let report = Simulator::new(SimConfig::default()).simulate(&trace);
        report.check_conservation().unwrap();
        assert!(report.total.demand_bytes > 0);
        let s = report.total_savings(&EnergyParams::valancius()).unwrap();
        assert!((0.0..1.0).contains(&s), "savings {s}");
    }

    #[test]
    fn store_source_matches_trace_source() {
        let trace = tiny_trace();
        let store = SessionStore::from_trace(&trace);
        for matcher in [MatcherKind::Hierarchical, MatcherKind::Random] {
            let cfg = SimConfig {
                matcher,
                ..Default::default()
            };
            let sim = Simulator::new(cfg);
            assert_eq!(
                sim.simulate(&trace),
                sim.simulate(&store),
                "{matcher:?}: prebuilt store must replay identically"
            );
        }
    }

    #[test]
    fn single_advance_pass_matches_production_fan_out() {
        // The columnar machine driven in one whole-horizon advance (the
        // test pipeline) against the production push_batch fast path.
        let trace = tiny_trace();
        let store = SessionStore::from_trace(&trace);
        let sim = Simulator::new(SimConfig::default());
        assert_eq!(
            sim.run_store_with(&store, Simulator::simulate_swarm),
            sim.simulate(&store)
        );
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let trace = tiny_trace();
        let c1 = SimConfig {
            threads: 1,
            ..Default::default()
        };
        let c4 = SimConfig {
            threads: 4,
            ..Default::default()
        };
        let r1 = Simulator::new(c1).simulate(&trace);
        let r4 = Simulator::new(c4).simulate(&trace);
        assert_eq!(r1, r4);
    }

    #[test]
    fn random_matcher_deterministic_and_no_better_locality() {
        let trace = tiny_trace();
        let cfg = SimConfig {
            matcher: MatcherKind::Random,
            ..Default::default()
        };
        let a = Simulator::new(cfg.clone()).simulate(&trace);
        let b = Simulator::new(cfg).simulate(&trace);
        assert_eq!(a, b, "random matcher must be seed-deterministic");
        let hier = Simulator::new(SimConfig::default()).simulate(&trace);
        assert_eq!(hier.total.peer_bytes(), a.total.peer_bytes());
        assert!(
            hier.total.peer_bytes_by_layer[0] >= a.total.peer_bytes_by_layer[0],
            "hierarchical keeps at least as many bytes exchange-local"
        );
        // And that translates into at least as much energy saved.
        let p = EnergyParams::valancius();
        assert!(hier.total_savings(&p).unwrap() >= a.total_savings(&p).unwrap());
    }

    #[test]
    fn capacity_measures_watch_time() {
        let trace = pair_trace(0);
        let report = Simulator::new(SimConfig::default()).simulate(&trace);
        let swarm = &report.swarms[0];
        // Time-averaged capacity: two 600 s sessions over the horizon.
        let expected = 2.0 * 600.0 / trace.horizon_seconds() as f64;
        assert!(
            (swarm.time_avg_capacity / expected - 1.0).abs() < 0.02,
            "time-avg capacity {} vs expected {expected}",
            swarm.time_avg_capacity
        );
        // Effective capacity: while active, occupancy is exactly 2, and
        // L̄ = 2 inverts to c ≈ 1.594.
        assert!(
            (swarm.capacity - 1.594).abs() < 0.01,
            "effective capacity {}",
            swarm.capacity
        );
    }

    #[test]
    fn daily_cells_cover_active_days_only() {
        let trace = pair_trace(0); // both sessions on day 0
        let report = Simulator::new(SimConfig::default()).simulate(&trace);
        assert_eq!(report.daily.len(), 1);
        assert_eq!(report.daily[0].day, 0);
        assert_eq!(report.daily[0].isp, Some(IspId(0)));
    }

    #[test]
    #[should_panic(expected = "invalid simulator config")]
    fn rejects_invalid_config() {
        let _ = Simulator::new(SimConfig {
            window_secs: 0,
            ..Default::default()
        });
    }

    #[test]
    fn preloading_reduces_sharing_but_conserves() {
        let trace = pair_trace(0);
        let cfg = SimConfig {
            preload_fraction: 0.4,
            ..Default::default()
        };
        let preloaded = Simulator::new(cfg).simulate(&trace);
        preloaded.check_conservation().unwrap();
        let baseline = Simulator::new(SimConfig::default()).simulate(&trace);
        // Same demand, less of it peer-shareable.
        assert_eq!(preloaded.total.demand_bytes, baseline.total.demand_bytes);
        assert!(preloaded.total.preload_bytes > 0);
        assert!(
            (preloaded.total.preload_bytes as f64 / preloaded.total.demand_bytes as f64 - 0.4)
                .abs()
                < 0.01
        );
        assert!(preloaded.total.offload_share() < baseline.total.offload_share());
        // And therefore lower savings: preloading fights peer assistance.
        let p = EnergyParams::valancius();
        assert!(preloaded.total_savings(&p).unwrap() < baseline.total_savings(&p).unwrap());
    }

    #[test]
    fn edge_cache_serves_head_items_locally() {
        let trace = pair_trace(100_000); // no overlap: all bytes are fallback
        let cfg = SimConfig {
            edge_cache: Some(crate::config::EdgeCache { top_items: 1 }),
            ..Default::default()
        };
        let cached = Simulator::new(cfg).simulate(&trace);
        cached.check_conservation().unwrap();
        // The pair trace watches item 0, which is cached: every byte served
        // from the exchange cache, none from the CDN.
        assert_eq!(cached.total.server_bytes, 0);
        assert_eq!(cached.total.cache_bytes, cached.total.demand_bytes);
        // Cache delivery skips the CDN network leg, saving energy even with
        // zero peer sharing.
        let p = EnergyParams::valancius();
        let s = cached.total_savings(&p).unwrap();
        assert!(s > 0.3, "cache-only savings {s}");
        // Uncached tail item would not benefit: compare against no cache.
        let plain = Simulator::new(SimConfig::default()).simulate(&trace);
        assert_eq!(plain.total.cache_bytes, 0);
        assert_eq!(plain.total_savings(&p), Some(0.0));
    }

    #[test]
    fn partial_participation_cuts_offload() {
        let trace = tiny_trace();
        let full = Simulator::new(SimConfig::default()).simulate(&trace);
        let partial = Simulator::new(SimConfig {
            participation_rate: 0.3,
            ..Default::default()
        })
        .simulate(&trace);
        partial.check_conservation().unwrap();
        assert!(
            partial.total.offload_share() < full.total.offload_share(),
            "30% participation must offload less: {} vs {}",
            partial.total.offload_share(),
            full.total.offload_share()
        );
        // Non-participants never upload.
        let mut non_participants_uploading = 0;
        for (uid, t) in partial.active_users() {
            if !super::participates(uid, 0.3) {
                assert_eq!(t.uploaded_bytes, 0, "user {uid} must not upload");
                non_participants_uploading += 1;
            }
        }
        assert!(
            non_participants_uploading > 0,
            "test must cover non-participants"
        );
        // Deterministic membership: same result twice.
        let again = Simulator::new(SimConfig {
            participation_rate: 0.3,
            ..Default::default()
        })
        .simulate(&trace);
        assert_eq!(partial, again);
    }

    #[test]
    fn participation_is_monotone() {
        let trace = tiny_trace();
        let offload_at = |rate: f64| {
            Simulator::new(SimConfig {
                participation_rate: rate,
                ..Default::default()
            })
            .simulate(&trace)
            .total
            .offload_share()
        };
        let lo = offload_at(0.2);
        let mid = offload_at(0.6);
        let hi = offload_at(1.0);
        assert!(
            lo < mid && mid < hi,
            "offload must grow with participation: {lo} {mid} {hi}"
        );
    }

    #[test]
    fn soa_active_set_matches_row_reference_on_generated_trace() {
        // The columnar window loop against the retained row-based oracle on
        // a real generated trace, across matchers and the config knobs that
        // feed the active set (preload, participation, cache).
        let trace = tiny_trace();
        let store = SessionStore::from_trace(&trace);
        let configs = [
            SimConfig::default(),
            SimConfig {
                matcher: MatcherKind::Random,
                ..Default::default()
            },
            SimConfig {
                preload_fraction: 0.3,
                participation_rate: 0.5,
                edge_cache: Some(crate::config::EdgeCache { top_items: 2 }),
                window_secs: 30,
                ..Default::default()
            },
            SimConfig {
                cooperation_rate: 0.5,
                ..Default::default()
            },
        ];
        for cfg in configs {
            let sim = Simulator::new(cfg);
            assert_eq!(sim.simulate(&store), sim.run_store_rows(&store));
        }
    }

    mod soa_properties {
        use super::*;
        use consume_local_topology::IspTopology;
        use proptest::prelude::*;

        /// Random session records over a tiny world: 40 users across 2
        /// ISPs / 8 exchanges, 6 items, a 2-day horizon, devices drawn from
        /// the real mix. Small enough that swarms overlap heavily, large
        /// enough to exercise admit/retire churn and the idle-gap jump.
        fn records_strategy() -> impl Strategy<Value = Vec<SessionRecord>> {
            let record = (
                0u32..40,         // user
                0u32..6,          // content
                0u64..2 * 86_400, // start
                60u32..5_000,     // duration
                0usize..5,        // device (MIX index)
                0u8..2,           // isp
                0u32..8,          // exchange
            )
                .prop_map(|(user, content, start, duration, device, isp, exchange)| {
                    let topo = IspTopology::new(8, 2).unwrap();
                    SessionRecord {
                        user: UserId(user),
                        content: ContentId(content),
                        start: SimTime(start),
                        duration_secs: duration,
                        device: DeviceClass::MIX[device].0,
                        isp: IspId(isp),
                        location: topo.location_of(ExchangeId(exchange)),
                    }
                });
            proptest::collection::vec(record, 1..60)
        }

        proptest! {
            #[test]
            fn prop_soa_and_row_paths_agree(
                records in records_strategy(),
                matcher_pick in 0u8..2,
                window_secs in 5u64..600,
                participation_pct in 30u64..=100,
                cooperation_pct in 40u64..=100,
            ) {
                let store = SessionStore::from_records(&records, 2 * 86_400, 40);
                let cfg = SimConfig {
                    matcher: if matcher_pick == 1 {
                        MatcherKind::Random
                    } else {
                        MatcherKind::Hierarchical
                    },
                    window_secs,
                    participation_rate: participation_pct as f64 / 100.0,
                    cooperation_rate: cooperation_pct as f64 / 100.0,
                    ..Default::default()
                };
                let sim = Simulator::new(cfg);
                let soa = sim.simulate(&store);
                let rows = sim.run_store_rows(&store);
                prop_assert_eq!(soa, rows);
            }
        }
    }

    #[test]
    fn segmented_source_matches_monolithic_store() {
        let trace = tiny_trace();
        let mono = SessionStore::from_trace(&trace);
        let seg = consume_local_trace::SegmentedStore::from_trace(&trace);
        // Window lengths that divide a day, don't divide a day, and exceed
        // a day — the segment-boundary pause/carry logic must be invisible
        // in all three regimes, across matchers and the active-set knobs.
        let configs = [
            SimConfig::default(),
            SimConfig {
                matcher: MatcherKind::Random,
                window_secs: 7,
                ..Default::default()
            },
            SimConfig {
                preload_fraction: 0.3,
                participation_rate: 0.5,
                edge_cache: Some(crate::config::EdgeCache { top_items: 2 }),
                window_secs: 30,
                ..Default::default()
            },
            SimConfig {
                window_secs: 100_000, // > one segment: windows straddle days
                ..Default::default()
            },
            SimConfig {
                cooperation_rate: 0.6,
                ..Default::default()
            },
        ];
        for cfg in configs {
            let sim = Simulator::new(cfg.clone());
            assert_eq!(
                sim.simulate(&seg),
                sim.simulate(&mono),
                "window_secs={}",
                cfg.window_secs
            );
        }
    }

    #[test]
    fn defection_degrades_offload_but_conserves_bytes() {
        let trace = tiny_trace();
        let run = |cooperation: f64| {
            Simulator::new(SimConfig {
                cooperation_rate: cooperation,
                ..Default::default()
            })
            .simulate(&trace)
        };
        let clean = run(1.0);
        assert_eq!(
            clean.degradation,
            Degradation::default(),
            "full cooperation must record zero degradation"
        );
        let faulty = run(0.5);
        faulty.check_conservation().expect("defection conserves");
        let d = faulty.degradation;
        assert!(d.failed_transfer_bytes > 0, "defections must occur");
        assert_eq!(
            d.failed_by_layer.iter().sum::<u64>(),
            d.failed_transfer_bytes
        );
        assert!(d.defection_windows > 0);
        assert!(
            d.failed_demand_bytes > 0,
            "flaking receivers must abandon some window demand to the fallback"
        );
        assert!(faulty.offload_loss().unwrap() > 0.0);
        // Same sessions, same demand — only the byte routing changed.
        assert_eq!(faulty.total.demand_bytes, clean.total.demand_bytes);
        assert!(
            faulty.total.peer_bytes() < clean.total.peer_bytes(),
            "defection must reduce peer-served volume"
        );
        assert!(
            faulty.total.server_bytes > clean.total.server_bytes,
            "failed transfers fall back to the CDN"
        );
        // Upload credits shrink with the failed volume: defectors earn
        // nothing for bytes they never delivered.
        let credited: u64 = faulty.users.iter().map(|u| u.uploaded_bytes).sum();
        let clean_credited: u64 = clean.users.iter().map(|u| u.uploaded_bytes).sum();
        assert!(credited < clean_credited);
    }

    #[test]
    fn trace_stream_matches_monolithic_run() {
        let config = consume_local_trace::TraceConfig::london_sep2013()
            .scaled(0.0003)
            .unwrap();
        let generator = TraceGenerator::new(config, 11);
        let sim = Simulator::new(SimConfig::default());
        let monolithic = sim.simulate(&generator.generate().unwrap());
        let mut stream = generator.segments().unwrap();
        let streamed = sim.simulate(&mut stream);
        assert_eq!(streamed, monolithic);
    }

    #[test]
    fn segmented_run_finish_drains_partial_pushes() {
        // Feeding only day 0 of a multi-day trace must still replay every
        // admitted session to completion: finish() drains the machines.
        let trace = pair_trace(0); // both sessions on day 0
        let seg = consume_local_trace::SegmentedStore::from_trace(&trace);
        let sim = Simulator::new(SimConfig::default());
        let mut run = sim.begin(seg.horizon_secs(), seg.population_len());
        run.push_segment(seg.segment(0));
        assert_eq!(run.finish(), sim.simulate(&trace));
    }

    #[test]
    fn segmented_run_deterministic_across_thread_counts() {
        let trace = tiny_trace();
        let seg = consume_local_trace::SegmentedStore::from_trace(&trace);
        let run_with = |threads: usize| {
            Simulator::new(SimConfig {
                threads,
                ..Default::default()
            })
            .simulate(&seg)
        };
        let reference = run_with(1);
        assert_eq!(reference, run_with(2));
        assert_eq!(reference, run_with(8));
    }

    #[test]
    fn cache_and_preload_compose() {
        let trace = pair_trace(0);
        let cfg = SimConfig {
            preload_fraction: 0.3,
            edge_cache: Some(crate::config::EdgeCache { top_items: 1 }),
            ..Default::default()
        };
        let report = Simulator::new(cfg).simulate(&trace);
        report.check_conservation().unwrap();
        // Preloaded bytes of cached items are served from the cache.
        assert_eq!(report.total.preload_bytes, 0);
        assert!(report.total.cache_bytes > 0);
        assert!(report.total.peer_bytes() > 0);
    }

    #[test]
    fn sort_key_fallback_surfaces_as_report_warning() {
        let trace = tiny_trace();
        let sim = Simulator::new(SimConfig::default());
        assert!(
            sim.simulate(&trace).warnings.is_empty(),
            "London presets fit the packed sort key"
        );

        // A session at an old single-field bound no longer warns: the
        // dynamic layout absorbs it.
        let mut records = trace.sessions().to_vec();
        let mut at_old_bound = records[0];
        at_old_bound.content = ContentId(1 << 15);
        records.push(at_old_bound);
        let horizon = trace.horizon_seconds();
        let users = trace.population().len();
        let absorbed = SessionStore::from_records(&records, horizon, users);
        assert!(
            sim.simulate(&absorbed).warnings.is_empty(),
            "single old-bound exceedance must stay on the fast path"
        );

        // Jointly pathological maxima (user and content widths alone
        // overflow 64 bits) trip the warning, which carries the measured
        // maxima and is identical on every path.
        let mut wide = records[0];
        wide.user = UserId(u32::MAX);
        wide.content = ContentId(u32::MAX);
        records.push(wide);
        let doctored = SessionStore::from_records(&records, horizon, users);
        let report = sim.simulate(&doctored);
        let (max_start_secs, max_user, max_content) = doctored.sort_key_maxima();
        assert_eq!(
            report.warnings,
            vec![SimWarning::SortKeyFallback {
                max_start_secs,
                max_user,
                max_content
            }]
        );
        let seg = consume_local_trace::SegmentedStore::from_records(&records, horizon, users);
        assert_eq!(
            sim.simulate(&seg),
            report,
            "warnings are batch-schedule invariant"
        );
    }

    /// The historical entry points must remain exact synonyms of
    /// `simulate` for downstream callers mid-migration.
    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_delegate_to_simulate() {
        let trace = tiny_trace();
        let store = SessionStore::from_trace(&trace);
        let seg = consume_local_trace::SegmentedStore::from_trace(&trace);
        let sim = Simulator::new(SimConfig::default());
        let expect = sim.simulate(&store);
        assert_eq!(sim.run(&trace), expect);
        // lint:allow(deprecated-sim-entry) pins the wrappers' delegation
        assert_eq!(sim.run_store(&store), expect);
        // lint:allow(deprecated-sim-entry) pins the wrappers' delegation
        assert_eq!(sim.run_segmented(&seg), expect);
        let generator = TraceGenerator::new(trace.config().clone(), 11);
        let mut stream = generator.segments().unwrap();
        // lint:allow(deprecated-sim-entry) pins the wrappers' delegation
        assert_eq!(sim.run_trace_stream(&mut stream), expect);
        // lint:allow(deprecated-sim-entry) pins the wrappers' delegation
        let mut run = sim.begin_segmented(seg.horizon_secs(), seg.population_len());
        for segment in seg.segments() {
            run.push_segment(segment);
        }
        assert_eq!(run.finish(), expect);
    }

    /// A snapshot taken mid-run must restore into a run that finishes
    /// byte-identically to both the donor and the uninterrupted reference,
    /// across configs that exercise every codec branch: hierarchical and
    /// random matchers, ISP/bitrate splits, edge cache + preload, and
    /// non-trivial defection rates.
    #[test]
    fn checkpoint_roundtrip_resumes_byte_identically() {
        let trace = tiny_trace();
        let seg = consume_local_trace::SegmentedStore::from_trace(&trace);
        let configs = [
            SimConfig::default(),
            SimConfig {
                matcher: MatcherKind::Random,
                seed: 9,
                upload: crate::config::UploadModel::AbsoluteBps(600_000),
                ..Default::default()
            },
            SimConfig {
                preload_fraction: 0.25,
                edge_cache: Some(crate::config::EdgeCache { top_items: 2 }),
                participation_rate: 0.8,
                cooperation_rate: 0.9,
                ..Default::default()
            },
        ];
        for config in configs {
            let sim = Simulator::new(config);
            let expect = sim.simulate(&seg);
            let cut = seg.num_segments() / 2;
            let mut run = sim.begin(seg.horizon_secs(), seg.population_len());
            for segment in &seg.segments()[..cut] {
                run.push_segment(segment);
            }
            let mut snapshot = Vec::new();
            run.checkpoint(&mut snapshot).unwrap();
            let mut resumed = Simulator::resume(&mut snapshot.as_slice()).unwrap();
            assert_eq!(resumed.watermark(), run.watermark());
            for segment in &seg.segments()[cut..] {
                run.push_segment(segment);
                resumed.push_segment(segment);
            }
            assert_eq!(resumed.finish(), expect, "resumed run diverged");
            assert_eq!(
                run.finish(),
                expect,
                "checkpoint() must not perturb the donor"
            );
        }
    }

    /// Snapshots are not day-aligned: a checkpoint cut at a mid-day
    /// watermark (live swarms, carried sessions, partially accumulated
    /// daily ledgers) must still resume byte-identically.
    #[test]
    fn checkpoint_at_mid_day_watermark_roundtrips() {
        let trace = tiny_trace();
        let store = SessionStore::from_trace(&trace);
        let sim = Simulator::new(SimConfig::default());
        let expect = sim.simulate(&store);
        // 9 000 s ticks never land on a day boundary (86 400 % 9 000 != 0).
        let schedule = crate::online::faults::batch_schedule(&store, 9_000);
        let cut = 11; // mid day 1
        let mut run = sim.begin(store.horizon_secs(), store.population_len());
        for (batch, watermark) in &schedule[..cut] {
            run.push_batch(batch, *watermark);
        }
        let mut snapshot = Vec::new();
        run.checkpoint(&mut snapshot).unwrap();
        drop(run); // the crash
        let mut resumed = Simulator::resume(&mut snapshot.as_slice()).unwrap();
        assert_eq!(resumed.watermark(), schedule[cut - 1].1);
        for (batch, watermark) in &schedule[cut..] {
            resumed.push_batch(batch, *watermark);
        }
        assert_eq!(resumed.finish(), expect);
    }

    /// The snapshot carries the full engine configuration: restoring on a
    /// host with a different default thread count must not change results,
    /// and the restored run keeps the donor's matcher and seed.
    #[test]
    fn snapshot_carries_the_configuration() {
        let trace = tiny_trace();
        let seg = consume_local_trace::SegmentedStore::from_trace(&trace);
        let config = SimConfig {
            matcher: MatcherKind::Random,
            seed: 77,
            threads: 2,
            ..Default::default()
        };
        let sim = Simulator::new(config);
        let expect = sim.simulate(&seg);
        let mut run = sim.begin(seg.horizon_secs(), seg.population_len());
        for segment in &seg.segments()[..3] {
            run.push_segment(segment);
        }
        let mut snapshot = Vec::new();
        run.checkpoint(&mut snapshot).unwrap();
        let mut resumed = Simulator::resume(&mut snapshot.as_slice()).unwrap();
        for segment in &seg.segments()[3..] {
            resumed.push_segment(segment);
        }
        assert_eq!(resumed.finish(), expect);
    }
}
