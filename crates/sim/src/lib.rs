//! The trace-driven hybrid-CDN simulator (Section IV of the paper).
//!
//! The engine replays a session trace in fixed windows of `Δτ` (10 s in the
//! paper): for every window of every sub-swarm it counts the online peers,
//! lets the managed matcher assign peer uploads closest-first, and accounts
//! every byte as either CDN-served or peer-served at a specific topology
//! layer. Energy is *not* fixed at simulation time: the engine records byte
//! ledgers, and any [`EnergyParams`](consume_local_energy::EnergyParams) set
//! can be evaluated against them afterwards — one simulation run prices both
//! the Valancius and Baliga models.
//!
//! * [`config`] — simulation parameters (window, upload model, policy,
//!   matcher);
//! * [`ledger`] — byte ledgers and their energy/savings evaluation;
//! * [`source`] — the [`SessionSource`] abstraction: watermarked,
//!   start-ordered session batches, implemented by every feeding mode
//!   (whole trace, shared columnar store, per-day segments, a streaming
//!   generator, or the live online channel);
//! * [`engine`] — the discrete time-step engine, sequential or parallel
//!   (thread-sharded across sub-swarms, deterministic regardless of
//!   thread count). [`Simulator::simulate`] is the single entry point: it
//!   consumes any [`SessionSource`] and produces the same byte-identical
//!   [`SimReport`] whether the sessions arrived as one monolithic batch,
//!   day segments, or a live stream (sessions straddling a batch boundary
//!   are carried forward by the resumable per-swarm window loops of
//!   [`SegmentedRun`]);
//! * [`online`] — the live ingest front-end: a bounded backpressured
//!   channel of arriving sessions, watermark-driven day closes, the
//!   N×-real-time [`replay`](online::replay) driver, and the
//!   [`online::faults`] deterministic crash-recovery harness;
//! * [`shard`] — swarm-sharded runs: disjoint shards (e.g. the metro
//!   presets' per-city streams) simulated one at a time and folded through
//!   the commutative [`merge_shard_reports`], byte-identical to the
//!   unsharded run while only one shard's engine state is resident;
//! * [`checkpoint`] — crash-safe snapshots: the versioned binary format,
//!   checkpoint cadence policies and the atomic write/rename protocol
//!   behind [`SegmentedRun::checkpoint`] / [`Simulator::resume`];
//! * [`report`] — per-swarm, per-day×ISP, per-user and total results,
//!   including theory-vs-simulation comparison points (Fig. 2 dots) and
//!   structured [`SimWarning`]s.
//!
//! # Example
//!
//! ```
//! use consume_local_sim::{SimConfig, Simulator};
//! use consume_local_trace::{TraceConfig, TraceGenerator};
//! use consume_local_energy::EnergyParams;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let trace = TraceGenerator::new(
//!     TraceConfig::london_sep2013().scaled(0.0005)?, 7).generate()?;
//! let report = Simulator::new(SimConfig::default()).simulate(&trace);
//! let savings = report.total_savings(&EnergyParams::valancius()).unwrap();
//! assert!(savings > 0.0 && savings < 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod config;
pub mod engine;
pub mod ledger;
pub mod online;
pub mod par;
pub mod report;
pub mod shard;
pub mod source;

pub use checkpoint::{CheckpointCadence, CheckpointError, CheckpointPolicy, Checkpointer};
pub use config::{EdgeCache, SimConfig, SimConfigError, UploadModel};
pub use engine::{DayClose, SegmentedRun, Simulator};
pub use ledger::ByteLedger;
pub use online::{OnlineError, OnlineSender, OnlineSource, ReplayConfig, ReplaySpeed, ReplayStats};
pub use report::{
    DailyIspCell, Degradation, SimReport, SimWarning, SwarmDay, SwarmReport, UserTraffic,
};
pub use shard::{merge_shard_reports, ShardError};
pub use source::{RetryPolicy, SessionSource, SourceError};
