//! Deterministic crash-recovery harness for the online engine.
//!
//! [`crash_and_recover`] scripts the full disaster: a consumer ingests the
//! watermarked batch stream while checkpointing per a
//! [`CheckpointPolicy`], is killed at a chosen batch ordinal (its
//! in-memory state dropped on the floor), and a successor process resumes
//! from the newest readable snapshot and re-feeds **only the
//! post-checkpoint events** through the real online replay driver
//! ([`resume_replay`]). Because every step is deterministic — the batch
//! schedule is a pure function of the store and tick, checkpoints happen
//! at batch boundaries, and the engine is batch-schedule-independent — the
//! recovered report must be byte-identical to the uninterrupted run, for
//! *any* crash point and *any* cadence. `tests/recovery.rs` sweeps the
//! kill point over every batch boundary at 1/2/8 threads.
//!
//! The harness kills deterministically (a scripted `break`, not a signal):
//! what is being tested is the recovery contract — snapshot completeness,
//! watermark-aligned re-feeding, derived-state recomputation — not the
//! operating system's process semantics.

use std::io;

use consume_local_trace::SessionStore;

use crate::checkpoint::{self, CheckpointError, CheckpointPolicy, Checkpointer};
use crate::engine::Simulator;
use crate::online::{resume_replay, ReplayConfig};
use crate::report::SimReport;

/// One scripted disaster: how the doomed consumer runs and when it dies.
#[derive(Debug, Clone)]
pub struct CrashPlan {
    /// Watermarked batches the consumer survives; the crash lands at this
    /// batch ordinal (0 = killed before the first batch, i.e. recovery
    /// starts from scratch).
    pub crash_after_batches: u64,
    /// Simulated seconds per watermark batch (the online tick).
    pub tick_secs: u64,
    /// Where and how often the doomed consumer checkpoints.
    pub policy: CheckpointPolicy,
}

/// What [`crash_and_recover`] observed across the crash and resurrection.
#[derive(Debug)]
pub struct CrashOutcome {
    /// The recovered run's final report — byte-identical to the
    /// uninterrupted run of the same sessions when the recovery contract
    /// holds.
    pub report: SimReport,
    /// The watermark recovery resumed from: the newest snapshot's, or 0
    /// when the crash beat the first checkpoint (recovery from scratch).
    pub resumed_from: u64,
    /// Snapshots the doomed consumer managed to write before dying.
    pub checkpoints_written: u64,
    /// Events the successor re-fed (exactly those starting at or after
    /// `resumed_from`).
    pub refed_events: u64,
}

/// Cuts a store into the exact watermarked batches the online replay
/// producer would emit at `tick_secs`: batch `i` holds the sessions
/// starting in `[i·tick, (i+1)·tick)`, watermarked at `(i+1)·tick`, with
/// the final watermark the first tick at or past the horizon (so every day
/// closes through the same cadence). A pure function of `(store, tick)` —
/// the crash harness replays prefixes of it deterministically.
///
/// # Panics
///
/// Panics if `tick_secs` is 0.
pub fn batch_schedule(store: &SessionStore, tick_secs: u64) -> Vec<(SessionStore, u64)> {
    assert!(tick_secs > 0, "tick_secs must be positive");
    let horizon = store.horizon_secs();
    let records = store.to_records();
    let mut out = Vec::new();
    let mut from = 0usize;
    let mut watermark = tick_secs;
    loop {
        let upto = from + records[from..].partition_point(|r| r.start.as_secs() < watermark);
        out.push((
            SessionStore::from_records(&records[from..upto], horizon, store.population_len()),
            watermark,
        ));
        from = upto;
        if watermark >= horizon {
            break;
        }
        watermark += tick_secs;
    }
    out
}

/// Runs the scripted disaster of `plan` over `store` and returns the
/// recovered outcome (see the [module docs](self)).
///
/// Phase 1 — the doomed consumer: pushes the [`batch_schedule`] batch by
/// batch into a fresh run, checkpointing per the plan's policy, and is
/// killed (state dropped) at the planned ordinal. Phase 2 — the
/// successor: resumes from the newest readable snapshot
/// ([`checkpoint::resume_latest`]) — or from scratch when no snapshot was
/// ever written — and finishes the run through [`resume_replay`],
/// re-feeding only the events at or after the snapshot's watermark.
///
/// # Errors
///
/// Propagates checkpoint-write failures from the doomed phase and any
/// snapshot corruption the successor finds (a *missing* snapshot is not an
/// error — that is the recover-from-scratch path).
pub fn crash_and_recover(
    sim: &Simulator,
    store: &SessionStore,
    plan: &CrashPlan,
) -> Result<CrashOutcome, CheckpointError> {
    let schedule = batch_schedule(store, plan.tick_secs);
    let mut checkpointer = Checkpointer::new(plan.policy.clone());
    {
        let mut run = sim.begin(store.horizon_secs(), store.population_len());
        for (ordinal, (batch, watermark)) in schedule.iter().enumerate() {
            if ordinal as u64 >= plan.crash_after_batches {
                break;
            }
            run.push_batch(batch, *watermark);
            let mut closes = 0u64;
            run.drain_closed_days(|_| closes += 1);
            checkpointer.note_watermark(&run)?;
            for _ in 0..closes {
                checkpointer.note_day_close(&run)?;
            }
        }
        // The crash: `run` is dropped here — everything accumulated since
        // the last snapshot is lost, exactly like a killed process.
    }

    let (run, resumed_from) = match checkpoint::resume_latest(&plan.policy.path) {
        Ok(run) => {
            let watermark = run.watermark();
            (run, watermark)
        }
        Err(CheckpointError::Io(e)) if e.kind() == io::ErrorKind::NotFound => {
            (sim.begin(store.horizon_secs(), store.population_len()), 0)
        }
        Err(e) => return Err(e),
    };
    let config = ReplayConfig {
        tick_secs: plan.tick_secs,
        resume_from: resumed_from,
        ..ReplayConfig::default()
    };
    let (report, stats) = resume_replay(run, store, &config);
    Ok(CrashOutcome {
        report,
        resumed_from,
        checkpoints_written: checkpointer.checkpoints_written(),
        refed_events: stats.events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use consume_local_trace::{SegmentedStore, TraceConfig, TraceGenerator};

    fn store() -> SessionStore {
        let trace = TraceGenerator::new(TraceConfig::london_sep2013().scaled(0.0003).unwrap(), 5)
            .generate()
            .unwrap();
        SessionStore::from_trace(&trace)
    }

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("consume-local-test-faults");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.ckpt", std::process::id()))
    }

    fn clean(path: &std::path::Path) {
        for suffix in ["", ".tmp", ".prev"] {
            let mut os = path.as_os_str().to_os_string();
            os.push(suffix);
            let _ = std::fs::remove_file(std::path::PathBuf::from(os));
        }
    }

    #[test]
    fn batch_schedule_matches_the_replay_producer_shape() {
        let store = store();
        let tick = 21_600;
        let schedule = batch_schedule(&store, tick);
        // The last watermark is the first tick at or past the horizon.
        assert_eq!(
            schedule.last().unwrap().1,
            store.horizon_secs().div_ceil(tick) * tick
        );
        assert_eq!(schedule.len() as u64, store.horizon_secs().div_ceil(tick));
        // Nothing lost, nothing reordered, every batch inside its window.
        let total: usize = schedule.iter().map(|(b, _)| b.len()).sum();
        assert_eq!(total, store.len());
        for (i, (batch, watermark)) in schedule.iter().enumerate() {
            assert_eq!(*watermark, (i as u64 + 1) * tick);
            for r in batch.to_records() {
                let start = r.start.as_secs();
                assert!(start < *watermark && *watermark - start <= tick);
            }
        }
    }

    #[test]
    fn recovery_mid_run_is_byte_identical_and_refeeds_only_the_tail() {
        let store = store();
        let sim = Simulator::new(SimConfig {
            seed: 11,
            ..Default::default()
        });
        let clean_report = sim.simulate(&store);
        let path = scratch("mid-run");
        clean(&path);
        let day = SegmentedStore::SEGMENT_SECS;
        let plan = CrashPlan {
            crash_after_batches: 9, // dies during day 3 (6h ticks)
            tick_secs: day / 4,
            policy: CheckpointPolicy::every_day_closes(1, &path),
        };
        let outcome = crash_and_recover(&sim, &store, &plan).unwrap();
        assert_eq!(outcome.report, clean_report);
        assert_eq!(outcome.checkpoints_written, 2, "days 0 and 1 sealed");
        assert_eq!(outcome.resumed_from, 2 * day);
        let tail = store
            .to_records()
            .iter()
            .filter(|r| r.start.as_secs() >= outcome.resumed_from)
            .count() as u64;
        assert_eq!(outcome.refed_events, tail);
        assert!(tail < store.len() as u64, "the head must not be re-fed");
        clean(&path);
    }

    #[test]
    fn crash_before_first_checkpoint_recovers_from_scratch() {
        let store = store();
        let sim = Simulator::new(SimConfig::default());
        let path = scratch("from-scratch");
        clean(&path);
        let plan = CrashPlan {
            crash_after_batches: 0,
            tick_secs: SegmentedStore::SEGMENT_SECS,
            policy: CheckpointPolicy::every_day_closes(1, &path),
        };
        let outcome = crash_and_recover(&sim, &store, &plan).unwrap();
        assert_eq!(outcome.report, sim.simulate(&store));
        assert_eq!(outcome.resumed_from, 0);
        assert_eq!(outcome.checkpoints_written, 0);
        assert_eq!(outcome.refed_events, store.len() as u64);
        clean(&path);
    }
}
