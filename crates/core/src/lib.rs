//! **consume-local**: carbon-aware peer-assisted content delivery — a
//! complete reproduction of *"Consume Local: Towards Carbon Free Content
//! Delivery"* (Raman, Karamshuk, Sastry, Secker, Chandaria — IEEE ICDCS
//! 2018).
//!
//! The paper shows that a CDN which lets nearby viewers stream from each
//! other ("consume local") cuts the end-to-end carbon footprint of online
//! video by 24–48 %, and that transferring the CDN's saved server energy to
//! uploading users as *carbon credits* makes most users' streaming carbon
//! free. This crate ties the workspace together:
//!
//! | module | contents |
//! |---|---|
//! | [`energy`] | per-bit energy models (Valancius / Baliga, Table IV) |
//! | [`topology`] | ISP metro trees and localisation probabilities (Table III) |
//! | [`analytics`] | the closed-form model: offload `G`, savings `S(c)` (Eq. 12), credits (Eq. 13) |
//! | [`trace`] | synthetic iPlayer-scale workload generation (Table I) |
//! | [`swarm`] | managed swarms: policies and closest-first matching |
//! | [`sim`] | the Δτ-window trace-driven simulator |
//! | [`carbon`] | per-user carbon statements and population reports |
//! | [`experiment`] | one-call orchestration: trace → simulation → reports |
//! | [`sweep`] | declarative parameter-grid sweeps fanned across threads |
//! | [`figures`] | regeneration of every table and figure in the paper |
//! | [`ascii`] | terminal rendering of series and tables |
//! | [`export`] | CSV/JSON export of figure and sweep data |
//!
//! # Quickstart
//!
//! ```
//! use consume_local::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let exp = Experiment::builder()
//!     .scale(0.0005)       // 1/2000 of London's September 2013
//!     .seed(42)
//!     .build()?;
//! let savings = exp.report().total_savings(&EnergyParams::valancius()).unwrap();
//! println!("system-wide energy savings: {:.1}%", savings * 100.0);
//! assert!(savings > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ascii;
pub mod benchguard;
pub mod error;
pub mod experiment;
pub mod export;
pub mod figures;
pub mod sweep;

pub use error::Error;

/// The closed-form analytical model (re-export of `consume-local-analytics`).
pub mod analytics {
    pub use consume_local_analytics::*;
}

/// Carbon-credit accounting (re-export of `consume-local-carbon`).
pub mod carbon {
    pub use consume_local_carbon::*;
}

/// Per-bit energy models (re-export of `consume-local-energy`).
pub mod energy {
    pub use consume_local_energy::*;
}

/// The trace-driven simulator (re-export of `consume-local-sim`).
pub mod sim {
    pub use consume_local_sim::*;
}

/// Statistical utilities (re-export of `consume-local-stats`).
pub mod stats {
    pub use consume_local_stats::*;
}

/// Managed swarm substrate (re-export of `consume-local-swarm`).
pub mod swarm {
    pub use consume_local_swarm::*;
}

/// ISP topology model (re-export of `consume-local-topology`).
pub mod topology {
    pub use consume_local_topology::*;
}

/// Workload generation (re-export of `consume-local-trace`).
pub mod trace {
    pub use consume_local_trace::*;
}

/// The most commonly used types in one import.
pub mod prelude {
    pub use crate::analytics::{CreditModel, SavingsModel, SwarmCapacity};
    pub use crate::carbon::{CarbonStatement, CarbonStatus, CreditReport, GridIntensity};
    pub use crate::energy::{CostModel, EnergyParams, ModelKind};
    pub use crate::error::Error;
    pub use crate::experiment::{Experiment, ExperimentBuilder, ExperimentError};
    pub use crate::sim::{
        CheckpointCadence, CheckpointError, CheckpointPolicy, Checkpointer, DayClose, Degradation,
        RetryPolicy, SessionSource, SimConfig, SimReport, SimWarning, Simulator, SourceError,
        UploadModel,
    };
    pub use crate::swarm::{MatcherKind, SwarmPolicy};
    pub use crate::sweep::{SweepConfig, SweepGrid, SweepReport, SweepRunner};
    pub use crate::topology::{IspId, IspRegistry, IspTopology, Layer};
    pub use crate::trace::{
        ChurnConfig, FlashCrowd, ScalePreset, SegmentedStore, SessionStore, Trace, TraceConfig,
        TraceGenerator,
    };
}
