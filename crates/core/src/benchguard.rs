//! Benchmark-regression comparison over `BENCH_*.json` perf records.
//!
//! The logic behind the `bench_guard` example, exposed as a library so the
//! comparison semantics are unit-testable on synthetic records: collect the
//! `wall_ms` entries of two records, pair them by path, and flag entries
//! whose fresh/baseline ratio regresses beyond a tolerance.
//!
//! Two comparison modes cover CI's two baseline sources:
//!
//! * [`Normalisation::MachineFactor`] — for comparing against a **committed
//!   record from a different machine** (developer workstation vs CI
//!   runner). Raw ratios conflate machine speed with code regressions, so
//!   the gate normalises by the *minimum* fresh/baseline ratio across all
//!   compared entries, floored at 1: the least-regressed entry estimates
//!   the machine-speed difference, a uniform slowdown passes, and one path
//!   regressing relative to the others does not. The weakness (the reason
//!   run-over-run exists): a runner with a different *shape* — e.g. fewer
//!   cores slowing only the high-`workers` runs — moves entries by
//!   different honest factors and can still false-positive.
//! * [`Normalisation::None`] — strict absolute ratios, for **run-over-run**
//!   comparison against the previous CI run's artifact (same runner class)
//!   or any same-machine pair. This is the robust default whenever a
//!   previous-run artifact is available.
//!
//! Wall-times are matched by path: section names, then the
//! `workers`/`threads` label of a `runs[]` entry (stable under reordering),
//! falling back to the array index for unlabeled arrays. Entries below the
//! noise floor and entries missing from either record are skipped (layout
//! changes must not hard-fail history comparisons).

use std::fmt;

use crate::export::json::JsonValue;

/// Baseline wall-times below this are dominated by timer noise and skipped.
pub const MIN_COMPARABLE_MS: f64 = 2.0;

/// How to correct for the two records' machines (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Normalisation {
    /// Divide ratios by the minimum fresh/baseline ratio (floored at 1):
    /// cross-machine mode for committed developer-machine baselines.
    MachineFactor,
    /// Compare absolute ratios: run-over-run / same-machine mode.
    None,
}

/// One compared wall-time.
#[derive(Debug, Clone, PartialEq)]
pub struct PairVerdict {
    /// The entry's path in both records (e.g. `/engine_on_store@8`).
    pub path: String,
    /// Raw fresh/baseline wall-time ratio.
    pub ratio: f64,
    /// The ratio after machine-factor normalisation (equals `ratio` under
    /// [`Normalisation::None`]).
    pub relative: f64,
    /// Whether `relative` exceeds the tolerance.
    pub regressed: bool,
}

/// The outcome of comparing two records.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Per-entry verdicts, in baseline-record order.
    pub pairs: Vec<PairVerdict>,
    /// The machine-speed divisor applied (1 under [`Normalisation::None`],
    /// with a single comparable pair, or when nothing regressed less).
    pub machine_factor: f64,
    /// Paths skipped with the reason (absent from fresh, below noise floor).
    pub skipped: Vec<String>,
}

impl Comparison {
    /// The regressed entries.
    pub fn regressions(&self) -> Vec<&PairVerdict> {
        self.pairs.iter().filter(|p| p.regressed).collect()
    }
}

/// Comparison failure: nothing to compare.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NoComparableEntries;

impl fmt::Display for NoComparableEntries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no comparable wall-times found — wrong file pair?")
    }
}

impl std::error::Error for NoComparableEntries {}

/// Recursively collects `(path, wall_ms)` pairs from a perf record. Array
/// entries are labelled by their `workers`/`threads` field when present (so
/// reordering runs never mismatches), by array position otherwise.
pub fn collect_walls(value: &JsonValue) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    walk(value, "", None, &mut out);
    out
}

fn walk(value: &JsonValue, path: &str, index_label: Option<usize>, out: &mut Vec<(String, f64)>) {
    match value {
        JsonValue::Obj(fields) => {
            let label = ["workers", "threads"]
                .iter()
                .find_map(|k| value.get(k).and_then(JsonValue::as_f64))
                .map(|l| format!("{l}"))
                .or(index_label.map(|i| format!("i{i}")));
            for (name, child) in fields {
                if name == "wall_ms" {
                    if let Some(ms) = child.as_f64() {
                        let key = match &label {
                            Some(l) => format!("{path}@{l}"),
                            None => format!("{path}/wall_ms"),
                        };
                        out.push((key, ms));
                    }
                } else {
                    walk(child, &format!("{path}/{name}"), None, out);
                }
            }
        }
        JsonValue::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                walk(item, path, Some(i), out);
            }
        }
        _ => {}
    }
}

/// Compares two perf records: pairs wall-times by path, applies the chosen
/// normalisation, and flags entries whose relative ratio exceeds
/// `1 + max_regress`.
///
/// # Errors
///
/// Returns [`NoComparableEntries`] when no wall-time exists in both records
/// above the noise floor — comparing disjoint or empty records should fail
/// the gate loudly, not pass it silently.
pub fn compare(
    baseline: &JsonValue,
    fresh: &JsonValue,
    max_regress: f64,
    normalisation: Normalisation,
) -> Result<Comparison, NoComparableEntries> {
    let baseline_walls = collect_walls(baseline);
    let fresh_walls = collect_walls(fresh);

    let mut skipped = Vec::new();
    let mut ratios: Vec<(String, f64)> = Vec::new();
    for (path, base_ms) in baseline_walls {
        let Some((_, fresh_ms)) = fresh_walls.iter().find(|(p, _)| *p == path) else {
            skipped.push(format!("{path}: absent from the fresh record"));
            continue;
        };
        if base_ms < MIN_COMPARABLE_MS {
            skipped.push(format!(
                "{path}: {base_ms:.2} ms baseline is below the noise floor"
            ));
            continue;
        }
        ratios.push((path, fresh_ms / base_ms));
    }
    if ratios.is_empty() {
        return Err(NoComparableEntries);
    }

    // The machine-speed factor: the least-regressed entry, floored at 1 — a
    // uniformly *slower* machine relaxes the gate, but a genuine improvement
    // in one section (ratio < 1) must never make unchanged sections look
    // relatively regressed. With a single comparable entry there is nothing
    // to normalise against.
    let machine_factor = match normalisation {
        Normalisation::MachineFactor if ratios.len() > 1 => ratios
            .iter()
            .map(|&(_, r)| r)
            .fold(f64::INFINITY, f64::min)
            .max(1.0),
        _ => 1.0,
    };

    let pairs = ratios
        .into_iter()
        .map(|(path, ratio)| {
            let relative = ratio / machine_factor;
            PairVerdict {
                path,
                ratio,
                relative,
                regressed: relative > 1.0 + max_regress,
            }
        })
        .collect();
    Ok(Comparison {
        pairs,
        machine_factor,
        skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(entries: &[(&str, f64)]) -> JsonValue {
        // Synthetic record: {"<section>": {"runs": [{"workers": w, "wall_ms": ms}]}}
        // built from "section@workers" labels, plus plain "section" scalars.
        let mut doc = JsonValue::object();
        let mut sections: Vec<(&str, Vec<(f64, f64)>)> = Vec::new();
        for &(label, ms) in entries {
            if let Some((section, w)) = label.split_once('@') {
                let w: f64 = w.parse().unwrap();
                match sections.iter_mut().find(|(s, _)| *s == section) {
                    Some((_, runs)) => runs.push((w, ms)),
                    None => sections.push((section, vec![(w, ms)])),
                }
            } else {
                doc = doc.field(label, JsonValue::object().field("wall_ms", ms));
            }
        }
        for (section, runs) in sections {
            let runs: Vec<JsonValue> = runs
                .into_iter()
                .map(|(w, ms)| JsonValue::object().field("workers", w).field("wall_ms", ms))
                .collect();
            doc = doc.field(section, JsonValue::object().field("runs", runs));
        }
        doc
    }

    #[test]
    fn collects_labelled_and_scalar_walls() {
        let doc = record(&[("merge@1", 4.0), ("merge@8", 2.0), ("columnarize", 1.5)]);
        let walls = collect_walls(&doc);
        assert!(walls.contains(&("/merge/runs@1".into(), 4.0)));
        assert!(walls.contains(&("/merge/runs@8".into(), 2.0)));
        assert!(walls.contains(&("/columnarize/wall_ms".into(), 1.5)));
    }

    #[test]
    fn labels_make_pairing_order_independent() {
        let a = record(&[("m@1", 10.0), ("m@8", 4.0)]);
        let b = record(&[("m@8", 4.0), ("m@1", 10.0)]);
        let cmp = compare(&a, &b, 0.25, Normalisation::None).unwrap();
        assert_eq!(cmp.regressions().len(), 0);
        assert!(cmp.pairs.iter().all(|p| (p.ratio - 1.0).abs() < 1e-12));
    }

    #[test]
    fn strict_mode_flags_any_regressing_entry() {
        let base = record(&[("a@1", 100.0), ("b@1", 100.0)]);
        let fresh = record(&[("a@1", 100.0), ("b@1", 130.0)]);
        let cmp = compare(&base, &fresh, 0.25, Normalisation::None).unwrap();
        assert_eq!(cmp.machine_factor, 1.0);
        let regs = cmp.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].path, "/b/runs@1");
    }

    #[test]
    fn strict_mode_catches_the_uniform_slowdown_machine_factor_forgives() {
        // A 40 % across-the-board slowdown: cross-machine mode attributes it
        // to the machine; run-over-run mode (same runner class) flags it.
        let base = record(&[("a@1", 100.0), ("b@1", 200.0)]);
        let fresh = record(&[("a@1", 140.0), ("b@1", 280.0)]);
        let strict = compare(&base, &fresh, 0.25, Normalisation::None).unwrap();
        assert_eq!(strict.regressions().len(), 2);
        let lenient = compare(&base, &fresh, 0.25, Normalisation::MachineFactor).unwrap();
        assert_eq!(lenient.regressions().len(), 0);
        assert!((lenient.machine_factor - 1.4).abs() < 1e-12);
    }

    #[test]
    fn machine_factor_still_flags_relative_regressions() {
        // Machine is 1.2× slower overall, but one entry regressed 2× on top.
        let base = record(&[("a@1", 100.0), ("b@1", 100.0)]);
        let fresh = record(&[("a@1", 120.0), ("b@1", 240.0)]);
        let cmp = compare(&base, &fresh, 0.25, Normalisation::MachineFactor).unwrap();
        assert!((cmp.machine_factor - 1.2).abs() < 1e-12);
        let regs = cmp.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].path, "/b/runs@1");
        assert!((regs[0].relative - 2.0).abs() < 1e-12);
    }

    #[test]
    fn improvements_never_relax_the_gate_below_one() {
        // One section got 3× faster: the floor-at-1 keeps the other
        // section's honest 30 % regression visible in machine-factor mode.
        let base = record(&[("fast@1", 300.0), ("slow@1", 100.0)]);
        let fresh = record(&[("fast@1", 100.0), ("slow@1", 130.0)]);
        let cmp = compare(&base, &fresh, 0.25, Normalisation::MachineFactor).unwrap();
        assert_eq!(cmp.machine_factor, 1.0);
        assert_eq!(cmp.regressions().len(), 1);
    }

    #[test]
    fn noise_floor_and_missing_entries_skip_not_fail() {
        let base = record(&[("tiny@1", 0.5), ("gone@1", 50.0), ("kept@1", 50.0)]);
        let fresh = record(&[("tiny@1", 400.0), ("kept@1", 50.0)]);
        let cmp = compare(&base, &fresh, 0.25, Normalisation::None).unwrap();
        assert_eq!(cmp.pairs.len(), 1);
        assert_eq!(cmp.skipped.len(), 2);
        assert_eq!(cmp.regressions().len(), 0);
    }

    #[test]
    fn single_entry_machine_factor_is_identity() {
        let base = record(&[("only@1", 100.0)]);
        let fresh = record(&[("only@1", 90.0)]);
        let cmp = compare(&base, &fresh, 0.25, Normalisation::MachineFactor).unwrap();
        assert_eq!(cmp.machine_factor, 1.0);
        assert!(!cmp.pairs[0].regressed);
    }

    #[test]
    fn disjoint_records_error() {
        let base = record(&[("a@1", 100.0)]);
        let fresh = record(&[("b@1", 100.0)]);
        assert_eq!(
            compare(&base, &fresh, 0.25, Normalisation::None),
            Err(NoComparableEntries)
        );
        assert!(NoComparableEntries.to_string().contains("no comparable"));
    }

    #[test]
    fn tolerance_boundary_is_exclusive() {
        let base = record(&[("a@1", 100.0), ("b@1", 100.0)]);
        let fresh = record(&[("a@1", 125.0), ("b@1", 125.1)]);
        let cmp = compare(&base, &fresh, 0.25, Normalisation::None).unwrap();
        assert!(!cmp.pairs[0].regressed, "exactly 25% passes");
        assert!(cmp.pairs[1].regressed, "beyond 25% fails");
    }
}
