//! Fig. 3: CCDF of per-swarm capacities (left) and per-swarm energy savings
//! (right) over the whole catalogue, plus the §IV-B-2 headline statistics
//! (median per-item savings ≈ 2 %, top-1 % ≳ 21 % / 33 %).

use consume_local_energy::{EnergyParams, ModelKind};
use consume_local_sim::SimReport;
use consume_local_stats::Edf;

/// The Fig. 3 data.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// CCDF of per-swarm capacities (log-x, as in the paper's left panel).
    pub capacity_ccdf: Vec<(f64, f64)>,
    /// CCDF of per-swarm savings for each model (right panel).
    pub savings_ccdf: Vec<(ModelKind, Vec<(f64, f64)>)>,
    /// Median per-swarm savings per model.
    pub median_savings: Vec<(ModelKind, f64)>,
    /// Demand-weighted mean savings of the top 1 % of swarms by capacity.
    pub top1pct_savings: Vec<(ModelKind, f64)>,
    /// Number of swarms with any traffic.
    pub swarms: usize,
}

/// Computes Fig. 3 from a full-catalogue simulation report.
pub fn fig3(report: &SimReport) -> Fig3 {
    let capacities: Vec<f64> = report
        .swarm_capacities()
        .into_iter()
        .filter(|&c| c > 0.0)
        .collect();
    let capacity_edf = Edf::from_samples(capacities.iter().copied());
    let capacity_ccdf = capacity_edf.ccdf_log_series(1e-3, 1e3, 60);

    let mut savings_ccdf = Vec::new();
    let mut median_savings = Vec::new();
    let mut top1pct_savings = Vec::new();
    for model in ModelKind::ALL {
        let params = EnergyParams::of(model);
        let points = report.swarm_points(&params);
        let edf = Edf::from_samples(points.iter().map(|&(_, s)| s));
        savings_ccdf.push((model, edf.ccdf_log_series(1e-3, 1.0, 50)));
        median_savings.push((model, edf.median().unwrap_or(0.0)));

        // Top 1% of swarms by (time-averaged) capacity, demand-weighted
        // savings — "the Top-1% of the popular items".
        let mut by_capacity: Vec<&consume_local_sim::SwarmReport> = report
            .swarms
            .iter()
            .filter(|s| s.time_avg_capacity > 0.0 && s.ledger.demand_bytes > 0)
            .collect();
        by_capacity.sort_by(|a, b| {
            b.time_avg_capacity
                .partial_cmp(&a.time_avg_capacity)
                .expect("finite")
        });
        let take = (by_capacity.len() / 100).max(1);
        let (mut num, mut den) = (0.0f64, 0.0f64);
        for s in by_capacity.into_iter().take(take) {
            if let Some(sv) = s.savings(&params) {
                let w = s.ledger.demand_bytes as f64;
                num += sv * w;
                den += w;
            }
        }
        top1pct_savings.push((model, if den > 0.0 { num / den } else { 0.0 }));
    }

    Fig3 {
        capacity_ccdf,
        savings_ccdf,
        median_savings,
        top1pct_savings,
        swarms: capacities.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment;

    fn data() -> Fig3 {
        let exp = Experiment::builder()
            .scale(0.0008)
            .seed(21)
            .build()
            .unwrap();
        fig3(exp.report())
    }

    #[test]
    fn ccdfs_are_monotone_decreasing() {
        let f = data();
        for series in std::iter::once(&f.capacity_ccdf).chain(f.savings_ccdf.iter().map(|(_, s)| s))
        {
            for w in series.windows(2) {
                assert!(w[1].1 <= w[0].1 + 1e-12);
            }
        }
        assert!(f.swarms > 10);
    }

    #[test]
    fn capacity_distribution_is_skewed() {
        let f = data();
        // Many swarms are tiny; few are large — the CCDF spans decades.
        let at_small = f.capacity_ccdf.iter().find(|(x, _)| *x >= 0.01).unwrap().1;
        let at_large = f.capacity_ccdf.iter().find(|(x, _)| *x >= 10.0).unwrap().1;
        assert!(at_small > 0.3, "most swarms above 0.01: {at_small}");
        assert!(at_large < 0.1, "few swarms above 10: {at_large}");
    }

    #[test]
    fn top_swarms_save_far_more_than_median() {
        let f = data();
        for ((m1, median), (m2, top)) in f.median_savings.iter().zip(&f.top1pct_savings) {
            assert_eq!(m1, m2);
            assert!(
                top > &(median + 0.05),
                "{m1:?}: top1% {top} vs median {median}"
            );
        }
        // The paper's shape: median per-swarm savings are tiny (~2%), the
        // top-1% save an order of magnitude more. (The paper's absolute
        // bands — 21 %/33 % for the top-1 % — require full-scale head
        // capacities and are checked by the bench harness at larger scale;
        // see EXPERIMENTS.md.)
        let median_v = f.median_savings[0].1;
        assert!(
            median_v < 0.12,
            "median per-swarm savings should be small: {median_v}"
        );
        let top_v = f.top1pct_savings[0].1;
        assert!(
            top_v > 3.0 * median_v.max(0.01),
            "top-1% savings should dominate: {top_v}"
        );
    }
}
