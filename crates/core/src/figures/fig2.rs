//! Fig. 2: energy savings vs swarm capacity — theory curves (Eq. 12) with
//! trace-driven simulation dots, for three content popularity tiers, both
//! energy models, the top-5 ISPs and a `q/β` sweep.

use consume_local_analytics::SavingsModel;
use consume_local_energy::{EnergyParams, ModelKind};
use consume_local_sim::{SimConfig, Simulator, UploadModel};
use consume_local_stats::grid;
use consume_local_topology::IspId;
use consume_local_trace::{ContentId, Trace};

/// Which of the paper's three exemplar popularity tiers a panel shows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PopularityTier {
    /// ≈100 K monthly views ("Bad Education"-like).
    Popular,
    /// ≈10 K monthly views ("Question Time"-like).
    Medium,
    /// ≈1 K monthly views ("What's to Eat"-like).
    Unpopular,
}

impl PopularityTier {
    /// All tiers in the paper's column order.
    pub const ALL: [PopularityTier; 3] = [
        PopularityTier::Popular,
        PopularityTier::Medium,
        PopularityTier::Unpopular,
    ];

    /// The targeted monthly view count.
    pub fn target_views(self) -> f64 {
        match self {
            PopularityTier::Popular => 100_000.0,
            PopularityTier::Medium => 10_000.0,
            PopularityTier::Unpopular => 1_000.0,
        }
    }

    /// Label used in output.
    pub fn label(self) -> &'static str {
        match self {
            PopularityTier::Popular => "highly popular (~100K views)",
            PopularityTier::Medium => "medium (~10K views)",
            PopularityTier::Unpopular => "unpopular (~1K views)",
        }
    }
}

/// Options for the Fig. 2 computation.
#[derive(Debug, Clone)]
pub struct Fig2Options {
    /// The `q/β` sweep (paper: 0.2, 0.4, 0.6, 0.8, 1.0).
    pub ratios: Vec<f64>,
    /// Points per theory curve.
    pub curve_points: usize,
}

impl Default for Fig2Options {
    fn default() -> Self {
        Self {
            ratios: vec![0.2, 0.4, 0.6, 0.8, 1.0],
            curve_points: 48,
        }
    }
}

/// One simulation dot: a (sub-swarm × ratio) outcome with its theory
/// prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig2Dot {
    /// The ISP the sub-swarm belonged to (colour in the paper's plot).
    pub isp: IspId,
    /// The `q/β` ratio of the run (marker in the paper's plot).
    pub ratio: f64,
    /// Measured sub-swarm capacity (x).
    pub capacity: f64,
    /// Simulated savings (y).
    pub sim: f64,
    /// Closed-form prediction `S(capacity)` from Eq. 12 with that ISP's
    /// topology (the paper's black curve, evaluated at the dot).
    pub theory: f64,
}

/// One panel: a (popularity tier × energy model) cell of the figure.
#[derive(Debug, Clone)]
pub struct Fig2Panel {
    /// Energy model of the row.
    pub model: ModelKind,
    /// Popularity tier of the column.
    pub tier: PopularityTier,
    /// The exemplar item chosen from the catalogue.
    pub item: ContentId,
    /// The item's expected monthly views at this trace's scale.
    pub expected_views: f64,
    /// Theory curves, one per ratio: `(ratio, [(capacity, savings)])` for
    /// the ISP-1 topology.
    pub curves: Vec<(f64, Vec<(f64, f64)>)>,
    /// Simulation dots across ISPs and ratios.
    pub dots: Vec<Fig2Dot>,
}

impl Fig2Panel {
    /// Mean absolute gap between simulated savings and the theory value at
    /// the measured capacities — the "good agreement" check of §IV-B-2.
    pub fn mean_theory_gap(&self) -> f64 {
        if self.dots.is_empty() {
            return 0.0;
        }
        self.dots
            .iter()
            .map(|d| (d.sim - d.theory).abs())
            .sum::<f64>()
            / self.dots.len() as f64
    }
}

/// Computes Fig. 2 from a trace: picks the three exemplar items, simulates
/// their swarms under each `q/β`, and pairs the dots with Eq. 12 curves.
///
/// `base` configures everything except the upload ratio, which is swept.
pub fn fig2(trace: &Trace, base: &SimConfig, opts: &Fig2Options) -> Vec<Fig2Panel> {
    let total_sessions = trace.sessions().len() as f64;
    let registry = &trace.config().registry;
    let items: Vec<(PopularityTier, ContentId)> = PopularityTier::ALL
        .iter()
        .map(|&tier| {
            (
                tier,
                trace
                    .catalogue()
                    .item_with_views(tier.target_views(), total_sessions),
            )
        })
        .collect();

    // Sub-trace restricted to the exemplar items (cheap: one clone of the
    // relevant sessions; catalogue/population are shared by clone).
    let wanted: Vec<ContentId> = items.iter().map(|(_, id)| *id).collect();
    let sessions: Vec<_> = trace
        .sessions()
        .iter()
        .filter(|s| wanted.contains(&s.content))
        .copied()
        .collect();
    let sub_trace = Trace::from_parts(
        trace.config().clone(),
        trace.catalogue().clone(),
        trace.population().clone(),
        sessions,
    );

    // One simulation per ratio covers all items and ISPs.
    let mut runs = Vec::with_capacity(opts.ratios.len());
    for &ratio in &opts.ratios {
        let cfg = SimConfig {
            upload: UploadModel::Ratio(ratio),
            ..base.clone()
        };
        runs.push((ratio, Simulator::new(cfg).simulate(&sub_trace)));
    }

    let mut panels = Vec::new();
    for model in ModelKind::ALL {
        let params = EnergyParams::of(model);
        for &(tier, item) in &items {
            let mut dots = Vec::new();
            let mut cap_lo = f64::INFINITY;
            let mut cap_hi = 0.0f64;
            for (ratio, report) in &runs {
                for swarm in report.swarms.iter().filter(|s| s.key.content == item) {
                    let Some(sim) = swarm.savings(&params) else {
                        continue;
                    };
                    if swarm.capacity <= 0.0 {
                        continue;
                    }
                    let isp = swarm.key.isp.unwrap_or(IspId(0));
                    let topo = registry
                        .get(isp)
                        .map(|p| p.topology.clone())
                        .unwrap_or_else(|| registry.profiles()[0].topology.clone());
                    let theory = SavingsModel::new(params, &topo, *ratio)
                        .expect("positive ratio")
                        .savings(swarm.capacity);
                    cap_lo = cap_lo.min(swarm.capacity);
                    cap_hi = cap_hi.max(swarm.capacity);
                    dots.push(Fig2Dot {
                        isp,
                        ratio: *ratio,
                        capacity: swarm.capacity,
                        sim,
                        theory,
                    });
                }
            }
            if !cap_lo.is_finite() {
                cap_lo = 0.01;
                cap_hi = 10.0;
            }
            let caps = grid::log_spaced(
                (cap_lo / 3.0).max(1e-4),
                (cap_hi * 3.0).max(cap_lo * 10.0),
                opts.curve_points,
            );
            let isp1 = &registry.profiles()[0].topology;
            let curves = opts
                .ratios
                .iter()
                .map(|&ratio| {
                    let m = SavingsModel::new(params, isp1, ratio).expect("positive ratio");
                    (ratio, m.savings_series(&caps))
                })
                .collect();
            panels.push(Fig2Panel {
                model,
                tier,
                item,
                expected_views: trace.catalogue().expected_views(item, total_sessions),
                curves,
                dots,
            });
        }
    }
    panels
}

#[cfg(test)]
mod tests {
    use super::*;
    use consume_local_trace::{TraceConfig, TraceGenerator};

    fn tiny_fig2() -> Vec<Fig2Panel> {
        let trace = TraceGenerator::new(TraceConfig::london_sep2013().scaled(0.0005).unwrap(), 3)
            .generate()
            .unwrap();
        let opts = Fig2Options {
            ratios: vec![0.4, 1.0],
            curve_points: 12,
        };
        fig2(&trace, &SimConfig::default(), &opts)
    }

    #[test]
    fn produces_six_panels_with_dots_and_curves() {
        let panels = tiny_fig2();
        assert_eq!(panels.len(), 6); // 3 tiers × 2 models
        for p in &panels {
            assert_eq!(p.curves.len(), 2);
            for (_, curve) in &p.curves {
                assert_eq!(curve.len(), 12);
                // Curves are monotone in capacity.
                for w in curve.windows(2) {
                    assert!(w[1].1 >= w[0].1 - 1e-9);
                }
            }
        }
        // The popular panels must have simulation dots.
        let popular = panels
            .iter()
            .find(|p| p.tier == PopularityTier::Popular && p.model == ModelKind::Valancius)
            .unwrap();
        assert!(!popular.dots.is_empty());
    }

    #[test]
    fn popular_tier_saves_more_than_unpopular() {
        let panels = tiny_fig2();
        let mean_sim = |tier: PopularityTier| -> f64 {
            let p = panels
                .iter()
                .find(|p| p.tier == tier && p.model == ModelKind::Valancius)
                .unwrap();
            if p.dots.is_empty() {
                return 0.0;
            }
            // Restrict to the full-ratio run for comparability.
            let full: Vec<&Fig2Dot> = p.dots.iter().filter(|d| d.ratio == 1.0).collect();
            full.iter().map(|d| d.sim).sum::<f64>() / full.len().max(1) as f64
        };
        assert!(mean_sim(PopularityTier::Popular) > mean_sim(PopularityTier::Unpopular));
    }

    #[test]
    fn simulation_tracks_theory() {
        let panels = tiny_fig2();
        for p in &panels {
            if p.dots.len() < 3 {
                continue;
            }
            let gap = p.mean_theory_gap();
            assert!(
                gap < 0.12,
                "{:?}/{:?}: mean |sim − theory| = {gap}",
                p.model,
                p.tier
            );
        }
    }

    #[test]
    fn dots_cover_multiple_isps() {
        let panels = tiny_fig2();
        let popular = panels
            .iter()
            .find(|p| p.tier == PopularityTier::Popular && p.model == ModelKind::Baliga)
            .unwrap();
        let isps: std::collections::HashSet<_> = popular.dots.iter().map(|d| d.isp).collect();
        assert!(isps.len() >= 3, "expected several ISPs, got {isps:?}");
    }
}
