//! Fig. 6: CDF of per-user carbon credit transfer after the CDN passes its
//! server-energy savings to uploading users.

use consume_local_carbon::CreditReport;
use consume_local_energy::{EnergyParams, ModelKind};
use consume_local_sim::SimReport;

/// The Fig. 6 data: one CDF per energy model plus headline shares.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// Per-model CDF series of per-user CCT over `[−1, 0.6]`.
    pub series: Vec<(ModelKind, Vec<(f64, f64)>)>,
    /// Per-model population credit reports.
    pub reports: Vec<(ModelKind, CreditReport)>,
}

impl Fig6 {
    /// The share of users who become carbon positive under `model`.
    pub fn positive_share(&self, model: ModelKind) -> f64 {
        self.reports
            .iter()
            .find(|(m, _)| *m == model)
            .map(|(_, r)| r.carbon_positive_share())
            .unwrap_or(0.0)
    }
}

/// Computes Fig. 6 from a simulation report's per-user traffic.
pub fn fig6(report: &SimReport, points: usize) -> Fig6 {
    let mut series = Vec::new();
    let mut reports = Vec::new();
    for model in ModelKind::ALL {
        let params = EnergyParams::of(model);
        let credit = CreditReport::from_traffic(
            report
                .users
                .iter()
                .map(|u| (u.watched_bytes, u.uploaded_bytes)),
            &params,
        );
        series.push((model, credit.fig6_series(points)));
        reports.push((model, credit));
    }
    Fig6 { series, reports }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment;

    fn data() -> Fig6 {
        let exp = Experiment::builder().scale(0.0008).seed(5).build().unwrap();
        fig6(exp.report(), 64)
    }

    #[test]
    fn cdfs_are_monotone_and_bounded() {
        let f = data();
        assert_eq!(f.series.len(), 2);
        for (_, s) in &f.series {
            assert_eq!(s.len(), 64);
            for w in s.windows(2) {
                assert!(w[1].1 >= w[0].1);
            }
            let last = s.last().unwrap().1;
            assert!((last - 1.0).abs() < 1e-9, "CDF reaches 1 within [−1, 0.6]");
        }
    }

    #[test]
    fn baliga_makes_more_users_positive() {
        let f = data();
        let v = f.positive_share(ModelKind::Valancius);
        let b = f.positive_share(ModelKind::Baliga);
        // Shape invariant at any scale: Baliga's larger per-bit server
        // saving turns strictly more users carbon positive. (The paper's
        // absolute shares — ≈41 % / >70 % — need full-scale head swarms and
        // are checked by the bench harness; see EXPERIMENTS.md.)
        assert!(b > v, "Baliga {b} vs Valancius {v}");
        assert!(b > 0.02, "some users must turn positive under Baliga: {b}");
        assert!(
            v < 0.9,
            "Valancius share must stay below Baliga-like levels: {v}"
        );
    }

    #[test]
    fn niche_viewers_stay_negative() {
        let f = data();
        for (_, r) in &f.reports {
            assert!(
                r.carbon_negative() > 0,
                "some users must stay carbon negative"
            );
            assert!(r.carbon_positive() > 0);
        }
    }
}
