//! Regeneration of every table and figure in the paper's evaluation.
//!
//! Each submodule computes the *data* behind one exhibit and returns typed
//! series; rendering (ASCII or CSV) is separate, so benches, examples and
//! tests all share the same computation:
//!
//! | exhibit | function | paper content |
//! |---|---|---|
//! | Table I | [`tables::table1`] | dataset description |
//! | Table III | [`tables::table3`] | localisation probabilities |
//! | Table IV | [`tables::table4`] | energy parameters |
//! | Fig. 2 | [`fig2::fig2`] | savings vs capacity, theory + simulation |
//! | Fig. 3 | [`fig3::fig3`] | CCDFs of per-swarm capacity and savings |
//! | Fig. 4 | [`fig4::fig4`] | daily aggregate savings per ISP |
//! | Fig. 5 | [`fig5::fig5`] | end-to-end / CDN / user / CCT vs capacity |
//! | Fig. 6 | [`fig6::fig6`] | CDF of per-user carbon credit transfer |

pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod tables;

pub use fig2::{fig2, Fig2Dot, Fig2Options, Fig2Panel, PopularityTier};
pub use fig3::{fig3, Fig3};
pub use fig4::{fig4, Fig4Series};
pub use fig5::{fig5, Fig5Curves};
pub use fig6::{fig6, Fig6};
