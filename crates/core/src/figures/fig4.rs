//! Fig. 4: daily aggregate energy savings across the month, per ISP,
//! simulation vs theory, both energy models.

use std::collections::BTreeMap;

use consume_local_analytics::SavingsModel;
use consume_local_energy::{EnergyParams, ModelKind};
use consume_local_sim::SimReport;
use consume_local_topology::{IspId, IspRegistry};

/// One (ISP × model) pair of day series.
#[derive(Debug, Clone)]
pub struct Fig4Series {
    /// The ISP.
    pub isp: IspId,
    /// The energy model.
    pub model: ModelKind,
    /// Simulated daily savings `(day, S)`.
    pub sim: Vec<(u32, f64)>,
    /// Theory daily savings: Eq. 12 evaluated at each swarm's *per-day*
    /// measured capacity, demand-weighted across the ISP's swarms.
    pub theory: Vec<(u32, f64)>,
}

impl Fig4Series {
    /// Demand-weighted monthly average of the simulated series — the
    /// paper's "on average around 30 % (18 %) for the biggest ISP".
    pub fn sim_monthly_mean(&self) -> f64 {
        if self.sim.is_empty() {
            return 0.0;
        }
        self.sim.iter().map(|(_, s)| s).sum::<f64>() / self.sim.len() as f64
    }
}

/// Computes Fig. 4 for the chosen ISPs (the paper plots ISPs 1, 4 and 5).
pub fn fig4(report: &SimReport, registry: &IspRegistry, isps: &[IspId]) -> Vec<Fig4Series> {
    let mut out = Vec::new();
    for model in ModelKind::ALL {
        let params = EnergyParams::of(model);
        for &isp in isps {
            let sim = report.daily_savings(Some(isp), &params);

            // Theory: per day, demand-weighted S_theory over the ISP's
            // swarms at their per-day capacities.
            let Some(profile) = registry.get(isp) else {
                continue;
            };
            // BTreeMap, not HashMap: `theory` below is built straight from
            // this map's iteration order, which must be day-sorted (the
            // `hash-iter` lint guards exactly this kind of output path).
            let mut per_day: BTreeMap<u32, (f64, f64)> = BTreeMap::new();
            for swarm in report.swarms.iter().filter(|s| s.key.isp == Some(isp)) {
                let model =
                    SavingsModel::new(params, &profile.topology, swarm.upload_ratio.max(1e-9))
                        .expect("positive ratio");
                for day in &swarm.daily {
                    let w = day.demand_bytes as f64;
                    if w <= 0.0 {
                        continue;
                    }
                    let s = model.savings(day.capacity);
                    let e = per_day.entry(day.day).or_insert((0.0, 0.0));
                    e.0 += s * w;
                    e.1 += w;
                }
            }
            let theory: Vec<(u32, f64)> = per_day
                .into_iter()
                .map(|(d, (num, den))| (d, num / den))
                .collect();

            out.push(Fig4Series {
                isp,
                model,
                sim,
                theory,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use super::*;
    use crate::experiment::Experiment;

    fn series() -> Vec<Fig4Series> {
        let exp = Experiment::builder()
            .scale(0.0008)
            .seed(33)
            .build()
            .unwrap();
        let registry = exp.trace().config().registry.clone();
        fig4(exp.report(), &registry, &[IspId(0), IspId(3), IspId(4)])
    }

    #[test]
    fn covers_requested_isps_and_models() {
        let s = series();
        assert_eq!(s.len(), 6); // 3 ISPs × 2 models
        for fs in &s {
            assert!(!fs.sim.is_empty(), "{:?}/{:?} sim empty", fs.isp, fs.model);
            assert!(!fs.theory.is_empty());
            // Days are sorted and within a month.
            assert!(fs.sim.windows(2).all(|w| w[0].0 < w[1].0));
            assert!(fs.sim.iter().all(|&(d, _)| d < 31));
        }
    }

    #[test]
    fn theory_tracks_simulation_daily() {
        for fs in series() {
            let theory: HashMap<u32, f64> = fs.theory.iter().copied().collect();
            let mut gaps = Vec::new();
            for &(day, sim) in &fs.sim {
                if let Some(&th) = theory.get(&day) {
                    gaps.push((sim - th).abs());
                }
            }
            assert!(!gaps.is_empty());
            let mean_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
            assert!(
                mean_gap < 0.08,
                "{:?}/{:?}: mean daily |sim − theory| = {mean_gap}",
                fs.isp,
                fs.model
            );
        }
    }

    #[test]
    fn biggest_isp_saves_most() {
        let s = series();
        let mean = |isp: IspId, model: ModelKind| -> f64 {
            s.iter()
                .find(|f| f.isp == isp && f.model == model)
                .map(|f| f.sim_monthly_mean())
                .unwrap()
        };
        for model in ModelKind::ALL {
            assert!(
                mean(IspId(0), model) > mean(IspId(4), model),
                "{model:?}: ISP-1 should beat ISP-5"
            );
        }
    }

    #[test]
    fn valancius_above_baliga() {
        let s = series();
        for isp in [IspId(0), IspId(3), IspId(4)] {
            let v = s
                .iter()
                .find(|f| f.isp == isp && f.model == ModelKind::Valancius)
                .unwrap()
                .sim_monthly_mean();
            let b = s
                .iter()
                .find(|f| f.isp == isp && f.model == ModelKind::Baliga)
                .unwrap()
                .sim_monthly_mean();
            assert!(v > b, "{isp:?}: {v} vs {b}");
        }
    }
}
