//! Tables I, III and IV.

use consume_local_energy::{table4_rows, Table4Row};
use consume_local_topology::{IspTopology, LocalisationRow};
use consume_local_trace::{Table1, Trace};

use crate::ascii;

/// Table I: dataset description, measured from a trace generated at `scale`
/// and projected to full scale.
pub fn table1(label: &str, trace: &Trace, scale: f64) -> Table1 {
    Table1::from_trace(label, trace, scale)
}

/// Table III: the localisation probabilities of the published ISP-1 tree.
pub fn table3() -> Vec<LocalisationRow> {
    IspTopology::london_table3()
        .expect("published topology is valid")
        .localisation_table()
}

/// Renders Table III as text.
pub fn render_table3(rows: &[LocalisationRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.layer.to_string(),
                r.count.to_string(),
                format!("{:.2} %", r.probability * 100.0),
            ]
        })
        .collect();
    ascii::table(&["Layer", "Count", "Localisation Probability"], &body)
}

/// Table IV: the energy parameters of both published models.
pub fn table4() -> Vec<Table4Row> {
    table4_rows()
}

/// Renders Table IV as text.
pub fn render_table4(rows: &[Table4Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.variable.to_string(),
                r.symbol.to_string(),
                format!("{}", r.valancius),
                format!("{}", r.baliga),
            ]
        })
        .collect();
    ascii::table(&["Variable", "Symbol", "Valancius", "Baliga"], &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_matches_paper() {
        let rows = table3();
        assert_eq!(rows[0].count, 345);
        assert!((rows[0].probability * 100.0 - 0.29).abs() < 0.005);
        assert_eq!(rows[1].count, 9);
        assert!((rows[1].probability * 100.0 - 11.11).abs() < 0.005);
        assert_eq!(rows[2].probability, 1.0);
        let text = render_table3(&rows);
        assert!(text.contains("Exchange Point"));
        assert!(text.contains("0.29 %"));
        assert!(text.contains("11.11 %"));
    }

    #[test]
    fn table4_renders_both_columns() {
        let rows = table4();
        let text = render_table4(&rows);
        assert!(text.contains("211.1"));
        assert!(text.contains("281.3"));
        assert!(text.contains("gamma_cdn"));
        assert!(text.contains("1050"));
    }
}
