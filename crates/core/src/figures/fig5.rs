//! Fig. 5: end-to-end, CDN and user savings plus the carbon credit transfer
//! as functions of swarm capacity (pure closed form, `q/β = 1`).

use consume_local_analytics::{CreditModel, SavingsModel};
use consume_local_energy::{EnergyParams, ModelKind};
use consume_local_stats::grid;
use consume_local_topology::IspTopology;

/// The four Fig. 5 curves for one energy model.
#[derive(Debug, Clone)]
pub struct Fig5Curves {
    /// The energy model.
    pub model: ModelKind,
    /// The capacity grid (log-spaced 10⁻³…10⁴ as in the paper).
    pub capacities: Vec<f64>,
    /// End-to-end system savings `S(c)` (Eq. 12).
    pub end_to_end: Vec<f64>,
    /// CDN savings normalised by CDN-only server energy: `G(c)`.
    pub cdn: Vec<f64>,
    /// User savings normalised by no-sharing user energy: `−G(c)`.
    pub user: Vec<f64>,
    /// Carbon credit transfer (Eq. 13) at `G(c)`.
    pub cct: Vec<f64>,
}

impl Fig5Curves {
    /// The capacity at which the CCT curve crosses zero (users turn carbon
    /// positive), if it does.
    pub fn neutrality_capacity(&self) -> Option<f64> {
        self.capacities
            .iter()
            .zip(&self.cct)
            .find(|(_, &cct)| cct >= 0.0)
            .map(|(&c, _)| c)
    }
}

/// Computes Fig. 5 for both models over `points` log-spaced capacities.
pub fn fig5(points: usize) -> Vec<Fig5Curves> {
    let topo = IspTopology::london_table3().expect("published topology is valid");
    let capacities = grid::log_spaced(1e-3, 1e4, points.max(2));
    ModelKind::ALL
        .iter()
        .map(|&model| {
            let params = EnergyParams::of(model);
            let savings = SavingsModel::new(params, &topo, 1.0).expect("ratio 1 valid");
            let credits = CreditModel::new(params);
            let mut end_to_end = Vec::with_capacity(capacities.len());
            let mut cdn = Vec::with_capacity(capacities.len());
            let mut user = Vec::with_capacity(capacities.len());
            let mut cct = Vec::with_capacity(capacities.len());
            for &c in &capacities {
                let pt = credits.capacity_curves(c, 1.0);
                end_to_end.push(savings.savings(c));
                cdn.push(pt.cdn_savings);
                user.push(pt.user_savings);
                cct.push(pt.cct);
            }
            Fig5Curves {
                model,
                capacities: capacities.clone(),
                end_to_end,
                cdn,
                user,
                cct,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curves() -> Vec<Fig5Curves> {
        fig5(120)
    }

    #[test]
    fn shapes_match_paper() {
        for c in curves() {
            let last = c.capacities.len() - 1;
            // CDN savings → 1, user → −1 as capacity grows.
            assert!(c.cdn[last] > 0.999);
            assert!(c.user[last] < -0.999);
            // CCT starts at −1 and ends positive.
            assert!((c.cct[0] + 1.0).abs() < 0.01);
            assert!(c.cct[last] > 0.0);
            // End-to-end grows monotonically from ~0.
            assert!(c.end_to_end[0] < 0.01);
            for w in c.end_to_end.windows(2) {
                assert!(w[1] >= w[0] - 1e-9);
            }
        }
    }

    #[test]
    fn asymptotic_cct_matches_section5() {
        let cs = curves();
        let at_end = |m: ModelKind| {
            cs.iter()
                .find(|c| c.model == m)
                .map(|c| *c.cct.last().unwrap())
                .unwrap()
        };
        assert!((at_end(ModelKind::Valancius) - 0.18).abs() < 0.01);
        assert!((at_end(ModelKind::Baliga) - 0.58).abs() < 0.01);
    }

    #[test]
    fn neutrality_crossing_exists_and_is_earlier_for_baliga() {
        let cs = curves();
        let v = cs[0].neutrality_capacity().expect("Valancius crosses zero");
        let b = cs[1].neutrality_capacity().expect("Baliga crosses zero");
        assert!(
            b < v,
            "Baliga's cheaper server credit turns positive at smaller swarms: {b} vs {v}"
        );
    }

    #[test]
    fn user_is_negative_of_cdn() {
        for c in curves() {
            for (u, d) in c.user.iter().zip(&c.cdn) {
                assert!((u + d).abs() < 1e-12);
            }
        }
    }
}
