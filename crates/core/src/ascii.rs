//! Terminal rendering: scatter/line charts and aligned tables.
//!
//! The examples and benches print their figure data; these helpers keep that
//! output legible without pulling in a plotting dependency.

/// Renders an XY series as an ASCII chart.
///
/// Multiple series can be overlaid; each uses its own glyph. Returns an
/// empty string when no finite points exist.
///
/// # Example
///
/// ```
/// use consume_local::ascii::Chart;
///
/// let series = vec![(0.0, 0.0), (1.0, 1.0), (2.0, 4.0)];
/// let out = Chart::new(40, 10).series('*', &series).render();
/// assert!(out.contains('*'));
/// ```
#[derive(Debug, Clone)]
pub struct Chart {
    width: usize,
    height: usize,
    log_x: bool,
    series: Vec<(char, Vec<(f64, f64)>)>,
    y_range: Option<(f64, f64)>,
}

impl Chart {
    /// Creates an empty chart of `width × height` characters (minimums 16×4
    /// are enforced).
    pub fn new(width: usize, height: usize) -> Self {
        Self {
            width: width.max(16),
            height: height.max(4),
            log_x: false,
            series: Vec::new(),
            y_range: None,
        }
    }

    /// Uses a logarithmic x axis (points with `x <= 0` are dropped).
    pub fn log_x(mut self) -> Self {
        self.log_x = true;
        self
    }

    /// Fixes the y range instead of auto-scaling.
    pub fn y_range(mut self, lo: f64, hi: f64) -> Self {
        self.y_range = Some((lo, hi));
        self
    }

    /// Adds a series rendered with `glyph`.
    pub fn series(mut self, glyph: char, points: &[(f64, f64)]) -> Self {
        self.series.push((glyph, points.to_vec()));
        self
    }

    /// Renders the chart.
    pub fn render(&self) -> String {
        let tx = |x: f64| if self.log_x { x.ln() } else { x };
        let pts: Vec<(usize, f64, f64)> = self
            .series
            .iter()
            .enumerate()
            .flat_map(|(si, (_, pts))| {
                pts.iter()
                    .filter(|(x, y)| x.is_finite() && y.is_finite() && (!self.log_x || *x > 0.0))
                    .map(move |&(x, y)| (si, tx(x), y))
            })
            .collect();
        if pts.is_empty() {
            return String::new();
        }
        let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(_, x, y) in &pts {
            x_lo = x_lo.min(x);
            x_hi = x_hi.max(x);
            y_lo = y_lo.min(y);
            y_hi = y_hi.max(y);
        }
        if let Some((lo, hi)) = self.y_range {
            y_lo = lo;
            y_hi = hi;
        }
        if x_hi == x_lo {
            x_hi = x_lo + 1.0;
        }
        if y_hi == y_lo {
            y_hi = y_lo + 1.0;
        }
        let mut grid = vec![vec![' '; self.width]; self.height];
        for &(si, x, y) in &pts {
            let cx = ((x - x_lo) / (x_hi - x_lo) * (self.width - 1) as f64).round() as usize;
            let fy = (y - y_lo) / (y_hi - y_lo);
            if !(0.0..=1.0).contains(&fy) {
                continue;
            }
            let cy = ((1.0 - fy) * (self.height - 1) as f64).round() as usize;
            let glyph = self.series[si].0;
            let cell = &mut grid[cy.min(self.height - 1)][cx.min(self.width - 1)];
            // Later series win on collisions unless the cell has the same glyph.
            *cell = glyph;
        }
        let mut out = String::new();
        for (i, row) in grid.iter().enumerate() {
            let label = if i == 0 {
                format!("{y_hi:>9.3} |")
            } else if i == self.height - 1 {
                format!("{y_lo:>9.3} |")
            } else {
                " ".repeat(9) + " |"
            };
            out.push_str(&label);
            out.extend(row.iter());
            out.push('\n');
        }
        let x_lo_label = if self.log_x { x_lo.exp() } else { x_lo };
        let x_hi_label = if self.log_x { x_hi.exp() } else { x_hi };
        out.push_str(&format!(
            "{}+{}\n{:>10}{:>width$.4}\n",
            " ".repeat(10),
            "-".repeat(self.width),
            format!("{x_lo_label:.4}"),
            x_hi_label,
            width = self.width - 4
        ));
        out
    }
}

/// Renders rows as an aligned text table.
///
/// # Example
///
/// ```
/// let t = consume_local::ascii::table(
///     &["model", "savings"],
///     &[vec!["Valancius".into(), "0.47".into()]],
/// );
/// assert!(t.contains("Valancius"));
/// ```
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: Vec<String>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate().take(cols) {
            line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        line.trim_end().to_string() + "\n"
    };
    out.push_str(&render_row(
        headers.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    out.push_str(&render_row(
        widths.iter().map(|w| "-".repeat(*w)).collect(),
        &widths,
    ));
    for row in rows {
        out.push_str(&render_row(row.clone(), &widths));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_renders_points() {
        let out = Chart::new(30, 8)
            .series('o', &[(0.0, 0.0), (10.0, 1.0)])
            .render();
        assert!(out.contains('o'));
        assert!(out.lines().count() >= 8);
    }

    #[test]
    fn empty_chart_is_empty() {
        assert!(Chart::new(30, 8).render().is_empty());
        assert!(Chart::new(30, 8).series('x', &[]).render().is_empty());
        // Non-finite-only series render nothing.
        assert!(Chart::new(30, 8)
            .series('x', &[(f64::NAN, 1.0)])
            .render()
            .is_empty());
    }

    #[test]
    fn log_x_drops_nonpositive() {
        let out = Chart::new(30, 8)
            .log_x()
            .series('x', &[(-1.0, 0.5), (0.0, 0.5), (1.0, 0.5), (100.0, 0.9)])
            .render();
        assert_eq!(out.matches('x').count(), 2);
    }

    #[test]
    fn y_range_clips() {
        let out = Chart::new(30, 8)
            .y_range(0.0, 1.0)
            .series('x', &[(0.0, 0.5), (1.0, 5.0)]) // second point clipped
            .render();
        assert_eq!(out.matches('x').count(), 1);
    }

    #[test]
    fn multiple_series_overlay() {
        let out = Chart::new(30, 8)
            .series('a', &[(0.0, 0.0), (1.0, 0.2)])
            .series('b', &[(0.0, 1.0), (1.0, 0.8)])
            .render();
        assert!(out.contains('a'));
        assert!(out.contains('b'));
    }

    #[test]
    fn table_aligns_columns() {
        let out = table(
            &["a", "long-header"],
            &[
                vec!["1".into(), "2".into()],
                vec!["333333".into(), "4".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert!(lines[1].starts_with("------"));
    }
}
