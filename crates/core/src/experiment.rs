//! One-call experiment orchestration: configure → generate trace → simulate.

use std::fmt;

use consume_local_sim::{SimConfig, SimConfigError, SimReport, Simulator};
use consume_local_trace::{Trace, TraceConfig, TraceError, TraceGenerator};

/// Error from [`ExperimentBuilder::build`].
#[derive(Debug)]
pub enum ExperimentError {
    /// The trace configuration or scale was invalid.
    Trace(TraceError),
    /// The simulator configuration was invalid.
    Sim(SimConfigError),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Trace(e) => write!(f, "experiment trace config: {e}"),
            ExperimentError::Sim(e) => write!(f, "experiment sim config: {e}"),
        }
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExperimentError::Trace(e) => Some(e),
            ExperimentError::Sim(e) => Some(e),
        }
    }
}

impl From<TraceError> for ExperimentError {
    fn from(e: TraceError) -> Self {
        ExperimentError::Trace(e)
    }
}

impl From<SimConfigError> for ExperimentError {
    fn from(e: SimConfigError) -> Self {
        ExperimentError::Sim(e)
    }
}

/// Builder for an [`Experiment`].
#[derive(Debug, Clone)]
pub struct ExperimentBuilder {
    base: TraceConfig,
    scale: f64,
    seed: u64,
    sim: SimConfig,
    trace_workers: usize,
}

impl Default for ExperimentBuilder {
    fn default() -> Self {
        Self {
            base: TraceConfig::london_sep2013(),
            scale: 0.002,
            seed: 42,
            sim: SimConfig::default(),
            trace_workers: 1,
        }
    }
}

impl ExperimentBuilder {
    /// Uses a different base trace configuration (default: Sep 2013 London).
    pub fn trace_config(mut self, config: TraceConfig) -> Self {
        self.base = config;
        self
    }

    /// Sets the workload scale in `(0, 1]` (default 0.002 ≈ 47 K sessions).
    pub fn scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Uses a custom simulator configuration.
    pub fn sim_config(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Sets the upload ratio `q/β` (shorthand into the sim config).
    pub fn upload_ratio(mut self, ratio: f64) -> Self {
        self.sim.upload = consume_local_sim::UploadModel::Ratio(ratio);
        self
    }

    /// Fans trace generation across up to `workers` threads (default 1).
    /// The generated trace — and therefore the whole experiment — is
    /// byte-identical for any worker count.
    pub fn trace_workers(mut self, workers: usize) -> Self {
        self.trace_workers = workers;
        self
    }

    /// Generates the trace and runs the simulation.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError`] if either configuration is invalid.
    pub fn build(self) -> Result<Experiment, ExperimentError> {
        let simulator = Simulator::try_new(self.sim.clone())?;
        let config = self.base.scaled(self.scale)?;
        let trace = TraceGenerator::new(config, self.seed)
            .workers(self.trace_workers)
            .generate()?;
        let report = simulator.simulate(&trace);
        Ok(Experiment {
            scale: self.scale,
            seed: self.seed,
            sim: self.sim,
            trace,
            report,
        })
    }
}

/// A completed experiment: the generated trace and its simulation report.
#[derive(Debug, Clone)]
pub struct Experiment {
    scale: f64,
    seed: u64,
    sim: SimConfig,
    trace: Trace,
    report: SimReport,
}

impl Experiment {
    /// Starts building an experiment.
    pub fn builder() -> ExperimentBuilder {
        ExperimentBuilder::default()
    }

    /// The workload scale used.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The master seed used.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The simulator configuration used.
    pub fn sim_config(&self) -> &SimConfig {
        &self.sim
    }

    /// The generated trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The simulation report.
    pub fn report(&self) -> &SimReport {
        &self.report
    }

    /// Re-simulates the same trace under a different simulator
    /// configuration (policy/matcher/ratio ablations share one trace).
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError::Sim`] for an invalid configuration.
    pub fn resimulate(&self, sim: SimConfig) -> Result<SimReport, ExperimentError> {
        Ok(Simulator::try_new(sim)?.simulate(&self.trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consume_local_energy::EnergyParams;
    use consume_local_swarm::SwarmPolicy;

    fn tiny() -> Experiment {
        Experiment::builder().scale(0.0003).seed(7).build().unwrap()
    }

    #[test]
    fn build_runs_end_to_end() {
        let exp = tiny();
        assert!(!exp.trace().sessions().is_empty());
        exp.report().check_conservation().unwrap();
        let s = exp
            .report()
            .total_savings(&EnergyParams::valancius())
            .unwrap();
        assert!(s > 0.0 && s < 1.0);
        assert_eq!(exp.scale(), 0.0003);
        assert_eq!(exp.seed(), 7);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(Experiment::builder().scale(0.0).build().is_err());
        assert!(Experiment::builder().upload_ratio(0.0).build().is_err());
        let err = Experiment::builder().scale(3.0).build().unwrap_err();
        assert!(err.to_string().contains("scale"));
    }

    #[test]
    fn resimulate_shares_trace() {
        let exp = tiny();
        let mut relaxed = exp.sim_config().clone();
        relaxed.policy = SwarmPolicy::content_only();
        let report = exp.resimulate(relaxed).unwrap();
        report.check_conservation().unwrap();
        // Same demand, different partitioning.
        assert_eq!(report.total.demand_bytes, exp.report().total.demand_bytes);
        // Relaxing the splits can only increase swarm sizes, hence offload.
        assert!(report.total.offload_share() >= exp.report().total.offload_share());
    }

    #[test]
    fn deterministic() {
        let a = Experiment::builder().scale(0.0002).seed(9).build().unwrap();
        let b = Experiment::builder().scale(0.0002).seed(9).build().unwrap();
        assert_eq!(a.report(), b.report());
    }

    #[test]
    fn trace_workers_do_not_change_the_experiment() {
        let serial = Experiment::builder().scale(0.0003).seed(5).build().unwrap();
        let parallel = Experiment::builder()
            .scale(0.0003)
            .seed(5)
            .trace_workers(4)
            .build()
            .unwrap();
        assert_eq!(serial.trace().sessions(), parallel.trace().sessions());
        assert_eq!(serial.report(), parallel.report());
    }
}
