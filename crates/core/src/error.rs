//! The workspace-level error type.
//!
//! Each layer of the workspace has its own narrow error
//! ([`TraceError`] for workload configuration, [`SimConfigError`] for
//! simulator parameters, [`OnlineError`] for the live ingest channel) and
//! the orchestration layer wraps the first two as
//! [`ExperimentError`]. Application
//! code that crosses layers — CLIs, services, sweep scripts — previously
//! had to name all of them or fall back to `Box<dyn Error>`. [`Error`] is
//! the single enum they all convert into with `?`:
//!
//! ```
//! use consume_local::prelude::*;
//!
//! fn run() -> Result<f64, consume_local::Error> {
//!     let config = TraceConfig::london_sep2013().scaled(0.0003)?; // TraceError
//!     let sim = Simulator::try_new(SimConfig::default())?; // SimConfigError
//!     let trace = TraceGenerator::new(config, 7).generate()?;
//!     let report = sim.simulate(&trace);
//!     Ok(report
//!         .total_savings(&EnergyParams::valancius())
//!         .unwrap_or(0.0))
//! }
//! assert!(run().unwrap() > 0.0);
//! ```

use std::fmt;

use consume_local_sim::{OnlineError, SimConfigError};
use consume_local_trace::TraceError;

use crate::experiment::ExperimentError;

/// Any error the workspace can produce, one layer per variant.
#[derive(Debug)]
pub enum Error {
    /// Workload generation / trace configuration failed.
    Trace(TraceError),
    /// The simulator configuration was invalid.
    Sim(SimConfigError),
    /// The online ingest channel failed (late event or disconnect).
    Online(OnlineError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Trace(e) => write!(f, "trace: {e}"),
            Error::Sim(e) => write!(f, "sim config: {e}"),
            Error::Online(e) => write!(f, "online ingest: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Trace(e) => Some(e),
            Error::Sim(e) => Some(e),
            Error::Online(e) => Some(e),
        }
    }
}

impl From<TraceError> for Error {
    fn from(e: TraceError) -> Self {
        Error::Trace(e)
    }
}

impl From<SimConfigError> for Error {
    fn from(e: SimConfigError) -> Self {
        Error::Sim(e)
    }
}

impl From<OnlineError> for Error {
    fn from(e: OnlineError) -> Self {
        Error::Online(e)
    }
}

/// Flattens the orchestration wrapper into the workspace enum, so code
/// mixing [`Experiment`](crate::experiment::Experiment) calls with direct
/// layer calls needs only one error type.
impl From<ExperimentError> for Error {
    fn from(e: ExperimentError) -> Self {
        match e {
            ExperimentError::Trace(e) => Error::Trace(e),
            ExperimentError::Sim(e) => Error::Sim(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    fn trace_err() -> TraceError {
        consume_local_trace::TraceConfig::london_sep2013()
            .scaled(0.0)
            .unwrap_err()
    }

    fn sim_err() -> SimConfigError {
        consume_local_sim::Simulator::try_new(consume_local_sim::SimConfig {
            window_secs: 0,
            ..Default::default()
        })
        .unwrap_err()
    }

    #[test]
    fn conversions_preserve_the_layer() {
        let e: Error = trace_err().into();
        assert!(matches!(e, Error::Trace(_)));
        assert!(e.to_string().starts_with("trace: "));
        assert!(e.source().is_some());

        let e: Error = sim_err().into();
        assert!(matches!(e, Error::Sim(_)));
        assert!(e.to_string().starts_with("sim config: "));

        let e: Error = OnlineError::Disconnected.into();
        assert!(matches!(e, Error::Online(OnlineError::Disconnected)));
        assert!(e.to_string().contains("disconnected"));
        assert!(e.source().is_some());
    }

    #[test]
    fn experiment_errors_flatten() {
        let e: Error = ExperimentError::Trace(trace_err()).into();
        assert!(matches!(e, Error::Trace(_)));
        let e: Error = ExperimentError::Sim(sim_err()).into();
        assert!(matches!(e, Error::Sim(_)));
    }
}
