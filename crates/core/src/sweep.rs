//! Declarative scenario sweeps: parameter grids over the paper's evaluation
//! axes, fanned out across worker threads, with machine-readable results.
//!
//! The paper's claims are sweeps — savings vs. swarm capacity, ablations of
//! matcher locality and swarm policy, sensitivity to the window Δτ — but a
//! hand-rolled [`Experiment`](crate::experiment::Experiment) per point does
//! not scale to grids and leaves no record for perf tracking. This module
//! makes the grid itself the unit of work:
//!
//! 1. [`SweepGrid`] declares the axes (workload scale preset × ISP topology
//!    × matcher × swarm policy × Δτ × upload ratio);
//! 2. [`SweepRunner`] expands the grid into [`Scenario`]s, generates each
//!    distinct trace **once** (in parallel, see
//!    [`SweepConfig::trace_workers`]), columnarises it **once** into a
//!    shared [`SessionStore`], and fans scenarios out across threads with
//!    the same slot-ordered work stealing the sim engine uses — results are
//!    deterministic for any worker count;
//! 3. [`SweepReport`] carries one [`ScenarioOutcome`] per grid point and
//!    renders to JSON (schema `consume-local/sweep-v1`) for `BENCH_*.json`
//!    trajectory tracking; [`SweepReport::to_json_deterministic`] omits
//!    wall-times so identical sweeps render byte-identical documents.
//!
//! # Example
//!
//! ```
//! use consume_local::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = SweepConfig { grid: SweepGrid::ci_quick(), seed: 7, ..Default::default() };
//! let report = SweepRunner::new(config)?.run();
//! assert!(!report.outcomes.is_empty());
//! let json = report.to_json().render();
//! assert!(json.starts_with(r#"{"schema":"consume-local/sweep-v1""#));
//! # Ok(())
//! # }
//! ```

use std::fmt;
use std::sync::Arc;
// lint:allow(no-wall-clock) wall_ms telemetry only; `to_json_deterministic()`
// omits every wall-time field, so no clock value reaches a gated output.
use std::time::Instant;

use consume_local_analytics::sweep::{ScenarioSample, SweepSummary};
use consume_local_energy::EnergyParams;
use consume_local_sim::par::{parallel_map, parallel_map_slices};
use consume_local_sim::{
    SegmentedRun, SimConfig, SimConfigError, SimReport, Simulator, UploadModel,
};
use consume_local_swarm::{MatcherKind, SwarmPolicy};
use consume_local_topology::IspRegistry;
use consume_local_trace::{
    ChurnConfig, ScalePreset, SessionStore, TraceConfig, TraceError, TraceGenerator,
};

use crate::export::json::JsonValue;

/// Which ISP registry populates the synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyPreset {
    /// The five-ISP London registry (Table III market shares).
    LondonTop5,
    /// One ISP with the Table III tree: every peer shares a provider.
    SingleIsp,
}

impl TopologyPreset {
    /// Builds the registry for this preset.
    pub fn registry(self) -> IspRegistry {
        match self {
            TopologyPreset::LondonTop5 => IspRegistry::london_top5(),
            TopologyPreset::SingleIsp => IspRegistry::single_table3(),
        }
    }

    /// A stable lower-case name for scenario ids.
    pub fn name(self) -> &'static str {
        match self {
            TopologyPreset::LondonTop5 => "london5",
            TopologyPreset::SingleIsp => "single-isp",
        }
    }
}

impl fmt::Display for TopologyPreset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The declared parameter grid: the cartesian product of its axes is the
/// scenario list. Every axis must be non-empty.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    /// Workload scales (each generates one trace per topology).
    pub presets: Vec<ScalePreset>,
    /// ISP topologies (each generates one trace per preset).
    pub topologies: Vec<TopologyPreset>,
    /// Matching strategies.
    pub matchers: Vec<MatcherKind>,
    /// Sub-swarm partitioning policies.
    pub policies: Vec<SwarmPolicy>,
    /// Window lengths Δτ in seconds.
    pub window_secs: Vec<u64>,
    /// Upload ratios `q/β`.
    pub upload_ratios: Vec<f64>,
    /// Churn departure rates (per online hour), each expanded through
    /// [`ChurnConfig::degradation_axis`]. `[0.0]` keeps churn off.
    pub churn_rates: Vec<f64>,
    /// Cooperation probabilities (peers silently defect with probability
    /// `1 - c` per window). `[1.0]` keeps defection off.
    pub cooperation: Vec<f64>,
}

impl Default for SweepGrid {
    fn default() -> Self {
        Self::paper_point()
    }
}

impl SweepGrid {
    /// The paper's single evaluation point at smoke scale.
    pub fn paper_point() -> Self {
        Self {
            presets: vec![ScalePreset::Smoke],
            topologies: vec![TopologyPreset::LondonTop5],
            matchers: vec![MatcherKind::Hierarchical],
            policies: vec![SwarmPolicy::paper_default()],
            window_secs: vec![10],
            upload_ratios: vec![1.0],
            churn_rates: vec![0.0],
            cooperation: vec![1.0],
        }
    }

    /// A reduced-sample grid for CI: smoke scale, both matchers, the two
    /// headline policies and two window lengths (8 scenarios).
    pub fn ci_quick() -> Self {
        Self {
            presets: vec![ScalePreset::Smoke],
            topologies: vec![TopologyPreset::LondonTop5],
            matchers: vec![MatcherKind::Hierarchical, MatcherKind::Random],
            policies: vec![SwarmPolicy::paper_default(), SwarmPolicy::content_only()],
            window_secs: vec![10, 30],
            upload_ratios: vec![1.0],
            churn_rates: vec![0.0],
            cooperation: vec![1.0],
        }
    }

    /// The robustness grid: one paper-point scenario swept across churn
    /// departure rates and cooperation probabilities, for the
    /// `churn_degradation` example's savings/offload degradation curves.
    pub fn churn_degradation(preset: ScalePreset) -> Self {
        Self {
            presets: vec![preset],
            topologies: vec![TopologyPreset::LondonTop5],
            matchers: vec![MatcherKind::Hierarchical],
            policies: vec![SwarmPolicy::paper_default()],
            window_secs: vec![10],
            upload_ratios: vec![1.0],
            churn_rates: vec![0.0, 0.5, 1.0, 2.0, 4.0],
            cooperation: vec![1.0, 0.8],
        }
    }

    /// The ablation grid of the paper's Section IV: matcher locality ×
    /// swarm policy × Δτ × upload ratio at one scale.
    pub fn ablations(preset: ScalePreset) -> Self {
        Self {
            presets: vec![preset],
            topologies: vec![TopologyPreset::LondonTop5],
            matchers: vec![MatcherKind::Hierarchical, MatcherKind::Random],
            policies: vec![
                SwarmPolicy::paper_default(),
                SwarmPolicy::cross_isp(),
                SwarmPolicy::mixed_bitrate(),
                SwarmPolicy::content_only(),
            ],
            window_secs: vec![5, 10, 30],
            upload_ratios: vec![0.5, 1.0],
            churn_rates: vec![0.0],
            cooperation: vec![1.0],
        }
    }

    /// Number of scenarios the grid expands to.
    pub fn len(&self) -> usize {
        self.presets.len()
            * self.topologies.len()
            * self.matchers.len()
            * self.policies.len()
            * self.window_secs.len()
            * self.upload_ratios.len()
            * self.churn_rates.len()
            * self.cooperation.len()
    }

    /// Whether any axis is empty (the grid expands to no scenarios).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the grid into scenarios, in axis-nesting order (presets
    /// outermost, upload ratios innermost).
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = Vec::with_capacity(self.len());
        for &preset in &self.presets {
            for &topology in &self.topologies {
                for &matcher in &self.matchers {
                    for &policy in &self.policies {
                        for &window_secs in &self.window_secs {
                            for &upload_ratio in &self.upload_ratios {
                                for &churn_rate in &self.churn_rates {
                                    for &cooperation in &self.cooperation {
                                        out.push(Scenario {
                                            preset,
                                            topology,
                                            matcher,
                                            policy,
                                            window_secs,
                                            upload_ratio,
                                            churn_rate,
                                            cooperation,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// One grid point: a fully specified simulation scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Workload scale preset.
    pub preset: ScalePreset,
    /// ISP topology preset.
    pub topology: TopologyPreset,
    /// Matching strategy.
    pub matcher: MatcherKind,
    /// Sub-swarm partitioning policy.
    pub policy: SwarmPolicy,
    /// Window length Δτ in seconds.
    pub window_secs: u64,
    /// Upload ratio `q/β`.
    pub upload_ratio: f64,
    /// Churn departure rate (per online hour); `0.0` keeps churn off.
    pub churn_rate: f64,
    /// Cooperation probability; `1.0` keeps defection off.
    pub cooperation: f64,
}

impl Scenario {
    /// A stable, human-readable scenario id, e.g.
    /// `smoke/london5/hierarchical/isp+bitrate/dt10/q1`. The churn and
    /// cooperation axes only appear when they deviate from their inert
    /// defaults (`/churn{r}`, `/coop{c}`), so ids from pre-churn sweeps
    /// are unchanged.
    pub fn id(&self) -> String {
        let mut id = format!(
            "{}/{}/{}/{}/dt{}/q{}",
            self.preset,
            self.topology,
            matcher_name(self.matcher),
            policy_name(self.policy),
            self.window_secs,
            self.upload_ratio
        );
        if self.churn_rate > 0.0 {
            id.push_str(&format!("/churn{}", self.churn_rate));
        }
        if self.cooperation < 1.0 {
            id.push_str(&format!("/coop{}", self.cooperation));
        }
        id
    }

    /// The simulator configuration for this scenario. `sim_threads` is the
    /// per-simulation worker count (1 when the sweep itself is parallel);
    /// `seed` feeds matcher randomness.
    pub fn sim_config(&self, seed: u64, sim_threads: usize) -> SimConfig {
        SimConfig {
            window_secs: self.window_secs,
            upload: UploadModel::Ratio(self.upload_ratio),
            policy: self.policy,
            matcher: self.matcher,
            seed,
            threads: sim_threads,
            cooperation_rate: self.cooperation,
            ..SimConfig::default()
        }
    }

    /// The trace configuration this scenario replays, including the churn
    /// axis (via [`ChurnConfig::degradation_axis`]).
    pub fn trace_config(&self) -> TraceConfig {
        let mut base = TraceConfig::london_sep2013();
        base.registry = self.topology.registry();
        base.churn = ChurnConfig::degradation_axis(self.churn_rate);
        self.preset.apply(base)
    }

    /// The key identifying the trace this scenario replays: scenarios
    /// sharing it replay the same generated sessions. Churn fragments the
    /// trace, so the churn rate is part of the key (bit-exact).
    fn trace_key(&self) -> (ScalePreset, TopologyPreset, u64) {
        (self.preset, self.topology, self.churn_rate.to_bits())
    }
}

/// A matcher's stable lower-case name.
fn matcher_name(m: MatcherKind) -> &'static str {
    match m {
        MatcherKind::Hierarchical => "hierarchical",
        MatcherKind::Random => "random",
    }
}

/// A policy's stable lower-case name.
fn policy_name(p: SwarmPolicy) -> &'static str {
    match (p.split_by_isp, p.split_by_bitrate) {
        (true, true) => "isp+bitrate",
        (false, true) => "bitrate",
        (true, false) => "isp",
        (false, false) => "content",
    }
}

/// Sweep execution parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// The parameter grid.
    pub grid: SweepGrid,
    /// Master seed: feeds trace generation and matcher randomness.
    pub seed: u64,
    /// Worker threads fanning scenarios out.
    pub workers: usize,
    /// Threads inside each scenario's simulator (default 1: the sweep
    /// parallelises across scenarios, not within them).
    pub sim_threads: usize,
    /// Worker threads inside each trace generation (`None`: same as
    /// `workers`). Distinct traces are generated one after another, each
    /// fanning its per-item synthesis across this many threads — the
    /// generated bytes are identical for any value.
    pub trace_workers: Option<usize>,
    /// Consume each trace as a stream of per-day segments instead of one
    /// shared monolithic [`SessionStore`]: every scenario holds a
    /// persistent [`SegmentedRun`], each generated day segment is fed to
    /// all of them and then dropped, so peak trace memory is **one day**
    /// instead of the whole horizon — the mode that makes `large`/`full`
    /// sweeps fit small machines. Outcomes are byte-identical to the
    /// shared-store mode (pinned in `tests/determinism.rs`); only the
    /// wall-time shape changes.
    pub segmented: bool,
    /// The engine's swarm-state spill/compaction lifecycle
    /// ([`SimConfig::spill`](consume_local_sim::SimConfig)): on by default,
    /// it freezes quiescent swarm machines and spills sealed days between
    /// segments — the memory lifecycle that keeps metro-scale runs inside
    /// the London RSS envelope. Outcomes are byte-identical either way
    /// (pinned alongside the segmented-mode identity); the toggle exists
    /// for oracle comparisons and memory-vs-CPU tuning at sweep scale.
    pub spill: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            grid: SweepGrid::default(),
            seed: 42,
            workers: SimConfig::default_threads(),
            sim_threads: 1,
            trace_workers: None,
            segmented: false,
            spill: true,
        }
    }
}

/// Error from sweep configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// The grid expands to zero scenarios.
    EmptyGrid,
    /// `workers` or `sim_threads` was zero.
    ZeroWorkers,
    /// A scenario's simulator configuration is invalid (e.g. a zero window
    /// or non-positive upload ratio on an axis).
    Sim {
        /// The offending scenario's id.
        scenario: String,
        /// The violated constraint.
        source: SimConfigError,
    },
    /// A scenario's trace configuration is invalid (e.g. a negative churn
    /// rate on the churn axis).
    Trace {
        /// The offending scenario's id.
        scenario: String,
        /// The violated constraint.
        source: TraceError,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::EmptyGrid => write!(f, "sweep grid has an empty axis"),
            SweepError::ZeroWorkers => write!(f, "workers and sim_threads must be at least 1"),
            SweepError::Sim { scenario, source } => {
                write!(f, "scenario `{scenario}`: {source}")
            }
            SweepError::Trace { scenario, source } => {
                write!(f, "scenario `{scenario}`: {source}")
            }
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Sim { source, .. } => Some(source),
            SweepError::Trace { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// One scenario's reduced result.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// The scenario that produced this outcome.
    pub scenario: Scenario,
    /// Population size of the generated trace.
    pub users: u64,
    /// Sessions replayed.
    pub sessions: u64,
    /// Sub-swarms simulated.
    pub swarms: u64,
    /// Total demand in bytes.
    pub demand_bytes: u64,
    /// CDN-served bytes.
    pub server_bytes: u64,
    /// Edge-cache-served bytes.
    pub cache_bytes: u64,
    /// Preloaded bytes.
    pub preload_bytes: u64,
    /// Peer-to-peer bytes by topology layer.
    pub peer_bytes_by_layer: [u64; 3],
    /// Share of demand served by peers.
    pub offload_share: f64,
    /// Savings under the Valancius parameters (`None` without demand).
    pub savings_valancius: Option<f64>,
    /// Savings under the Baliga parameters (`None` without demand).
    pub savings_baliga: Option<f64>,
    /// Wall-clock simulation time in milliseconds (excludes trace
    /// generation, which is shared across scenarios).
    ///
    /// Measured while up to [`SweepConfig::workers`] scenarios run
    /// concurrently, so this is a *throughput-context* number: comparable
    /// across runs with the same worker count (which the timing JSON
    /// records), not a contention-free kernel time — the `sweep_engine`
    /// bench's `engine_hot_path` section is the isolated measurement.
    pub wall_ms: f64,
}

impl ScenarioOutcome {
    /// `axes` flags which robustness axes the sweep actually used
    /// (`(churn, cooperation)`): the corresponding fields are only emitted
    /// then, so documents from churn-free sweeps are byte-identical to
    /// pre-churn output.
    fn to_json(&self, with_timings: bool, axes: (bool, bool)) -> JsonValue {
        let savings = |s: Option<f64>| s.map_or(JsonValue::Null, JsonValue::Num);
        let mut obj = JsonValue::object()
            .field("id", self.scenario.id())
            .field("preset", self.scenario.preset.name())
            .field("topology", self.scenario.topology.name())
            .field("matcher", matcher_name(self.scenario.matcher))
            .field("policy", policy_name(self.scenario.policy))
            .field("window_secs", self.scenario.window_secs)
            .field("upload_ratio", self.scenario.upload_ratio);
        if axes.0 {
            obj = obj.field("churn_rate", self.scenario.churn_rate);
        }
        if axes.1 {
            obj = obj.field("cooperation", self.scenario.cooperation);
        }
        obj = obj
            .field("users", self.users)
            .field("sessions", self.sessions)
            .field("swarms", self.swarms)
            .field("demand_bytes", self.demand_bytes)
            .field("server_bytes", self.server_bytes)
            .field("cache_bytes", self.cache_bytes)
            .field("preload_bytes", self.preload_bytes)
            .field(
                "peer_bytes_by_layer",
                self.peer_bytes_by_layer
                    .iter()
                    .map(|&b| JsonValue::Int(b))
                    .collect::<Vec<_>>(),
            )
            .field("offload_share", self.offload_share)
            .field(
                "savings",
                JsonValue::object()
                    .field("valancius", savings(self.savings_valancius))
                    .field("baliga", savings(self.savings_baliga)),
            );
        if with_timings {
            obj = obj.field("wall_ms", self.wall_ms);
        }
        obj
    }
}

/// Timings of one shared trace build: generation plus columnarisation into
/// the [`SessionStore`] every scenario of that `(preset, topology)` replays.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceBuild {
    /// Workload scale preset of the trace.
    pub preset: ScalePreset,
    /// ISP topology preset of the trace.
    pub topology: TopologyPreset,
    /// Sessions generated.
    pub sessions: u64,
    /// Users in the generated population.
    pub users: u64,
    /// Wall-clock trace generation time in milliseconds (at
    /// [`SweepConfig::trace_workers`] threads).
    pub generate_ms: f64,
    /// Wall-clock [`SessionStore`] build time in milliseconds.
    pub columnarize_ms: f64,
}

/// The full result of one sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// The master seed the sweep ran with.
    pub seed: u64,
    /// Worker threads the sweep fanned out across (the concurrency context
    /// of every `wall_ms`; recorded in the timing JSON).
    pub workers: usize,
    /// Worker threads each trace generation fanned out across.
    pub trace_workers: usize,
    /// One build record per distinct `(preset, topology)` trace, in first-
    /// use order.
    pub trace_builds: Vec<TraceBuild>,
    /// One outcome per scenario, in grid expansion order.
    pub outcomes: Vec<ScenarioOutcome>,
}

impl SweepReport {
    /// Cross-scenario summary statistics over the scenarios that recorded
    /// demand. A zero-demand scenario has no savings measurement (its JSON
    /// renders `null`), so it is *excluded* rather than counted as 0 %.
    /// `None` when no scenario measured anything.
    pub fn summary(&self) -> Option<SweepSummary> {
        SweepSummary::of(&self.measured().0)
    }

    /// The measured (with-demand) samples plus, for each, the index of its
    /// outcome — the mapping that turns summary extrema indices back into
    /// scenarios.
    fn measured(&self) -> (Vec<ScenarioSample>, Vec<usize>) {
        let mut samples = Vec::with_capacity(self.outcomes.len());
        let mut indices = Vec::with_capacity(self.outcomes.len());
        for (i, o) in self.outcomes.iter().enumerate() {
            if let Some(savings) = o.savings_valancius {
                samples.push(ScenarioSample {
                    savings,
                    offload: o.offload_share,
                    wall_ms: o.wall_ms,
                });
                indices.push(i);
            }
        }
        (samples, indices)
    }

    /// Renders the report as a `consume-local/sweep-v1` JSON document,
    /// wall-times included.
    pub fn to_json(&self) -> JsonValue {
        self.json_impl(true)
    }

    /// Renders the report without any wall-clock measurement, so two runs of
    /// the same sweep produce byte-identical documents (the determinism
    /// suite pins this).
    pub fn to_json_deterministic(&self) -> JsonValue {
        self.json_impl(false)
    }

    /// Total wall-clock per phase: generate / columnarize (once per shared
    /// trace) and simulate (summed over scenarios, concurrency context
    /// [`SweepReport::workers`]).
    pub fn phase_wall_ms(&self) -> (f64, f64, f64) {
        let generate = self.trace_builds.iter().map(|b| b.generate_ms).sum();
        let columnarize = self.trace_builds.iter().map(|b| b.columnarize_ms).sum();
        let simulate = self.outcomes.iter().map(|o| o.wall_ms).sum();
        (generate, columnarize, simulate)
    }

    fn json_impl(&self, with_timings: bool) -> JsonValue {
        let mut doc = JsonValue::object()
            .field("schema", "consume-local/sweep-v1")
            .field("seed", self.seed)
            .field("scenarios", self.outcomes.len());
        if with_timings {
            let (generate, columnarize, simulate) = self.phase_wall_ms();
            doc = doc
                .field("workers", self.workers)
                .field("trace_workers", self.trace_workers)
                .field(
                    "phase_wall_ms",
                    JsonValue::object()
                        .field("generate", generate)
                        .field("columnarize", columnarize)
                        .field("simulate", simulate),
                )
                .field(
                    "trace_builds",
                    self.trace_builds
                        .iter()
                        .map(|b| {
                            JsonValue::object()
                                .field("preset", b.preset.name())
                                .field("topology", b.topology.name())
                                .field("sessions", b.sessions)
                                .field("users", b.users)
                                .field("generate_ms", b.generate_ms)
                                .field("columnarize_ms", b.columnarize_ms)
                        })
                        .collect::<Vec<_>>(),
                );
        }
        let (samples, measured_indices) = self.measured();
        if let Some(summary) = SweepSummary::of(&samples) {
            let mut s = JsonValue::object()
                .field("measured_scenarios", summary.scenarios)
                .field("savings", summary_json(&summary.savings))
                .field("offload", summary_json(&summary.offload))
                .field(
                    "best_savings_id",
                    self.outcomes[measured_indices[summary.best_savings_index]]
                        .scenario
                        .id(),
                )
                .field(
                    "worst_savings_id",
                    self.outcomes[measured_indices[summary.worst_savings_index]]
                        .scenario
                        .id(),
                );
            if with_timings {
                s = s
                    .field("wall_ms", summary_json(&summary.wall_ms))
                    .field("total_wall_ms", summary.total_wall_ms);
            }
            doc = doc.field("summary", s);
        }
        let axes = (
            self.outcomes.iter().any(|o| o.scenario.churn_rate > 0.0),
            self.outcomes.iter().any(|o| o.scenario.cooperation < 1.0),
        );
        doc.field(
            "results",
            self.outcomes
                .iter()
                .map(|o| o.to_json(with_timings, axes))
                .collect::<Vec<_>>(),
        )
    }
}

fn summary_json(s: &consume_local_stats::Summary) -> JsonValue {
    JsonValue::object()
        .field("mean", s.mean)
        .field("min", s.min)
        .field("median", s.median)
        .field("max", s.max)
}

/// The sweep runner: validated configuration, ready to execute.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    config: SweepConfig,
    scenarios: Vec<Scenario>,
}

impl SweepRunner {
    /// Validates the grid (non-empty axes, every scenario's sim config
    /// constructible) and prepares the runner.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError`] for an empty grid, zero worker counts, or an
    /// axis value the simulator rejects.
    pub fn new(config: SweepConfig) -> Result<Self, SweepError> {
        if config.grid.is_empty() {
            return Err(SweepError::EmptyGrid);
        }
        if config.workers == 0 || config.sim_threads == 0 || config.trace_workers == Some(0) {
            return Err(SweepError::ZeroWorkers);
        }
        let scenarios = config.grid.scenarios();
        for s in &scenarios {
            s.sim_config(config.seed, config.sim_threads)
                .validate()
                .map_err(|source| SweepError::Sim {
                    scenario: s.id(),
                    source,
                })?;
            s.trace_config()
                .validate()
                .map_err(|source| SweepError::Trace {
                    scenario: s.id(),
                    source,
                })?;
        }
        Ok(Self { config, scenarios })
    }

    /// The expanded scenario list, in execution (grid) order.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// A scenario's simulator configuration under this sweep's execution
    /// knobs ([`SweepConfig::sim_threads`], [`SweepConfig::spill`]).
    fn scenario_sim(&self, scenario: &Scenario) -> SimConfig {
        let mut sim = scenario.sim_config(self.config.seed, self.config.sim_threads);
        sim.spill = self.config.spill;
        sim
    }

    /// Runs every scenario and returns the report.
    ///
    /// Distinct `(preset, topology)` traces are generated **and
    /// columnarised once**: each generation fans its per-item synthesis
    /// across [`SweepConfig::trace_workers`] threads, the resulting
    /// [`SessionStore`] is shared (`Arc`) by every scenario replaying that
    /// trace, and scenarios then fan out across `workers` threads with
    /// slot-ordered work stealing — the report is identical for any worker
    /// count on either axis.
    ///
    /// With [`SweepConfig::segmented`] set, the run is **time-major**
    /// instead: each trace streams out one day segment at a time, every
    /// scenario's [`SegmentedRun`] consumes the segment concurrently, and
    /// the segment is dropped before the next is generated — same
    /// outcomes, one-day peak trace memory.
    pub fn run(&self) -> SweepReport {
        if self.config.segmented {
            self.run_segment_stream()
        } else {
            self.run_shared_store()
        }
    }

    /// The shared-store execution mode (see [`SweepRunner::run`]).
    fn run_shared_store(&self) -> SweepReport {
        // 1. One trace per distinct (preset, topology), generated once and
        //    columnarised once, with per-phase wall times recorded. Distinct
        //    traces build concurrently across `workers` threads AND each
        //    generation fans its per-item synthesis across `trace_workers`
        //    threads — single-trace grids get the inner parallelism,
        //    many-trace grids the outer. Like every scenario `wall_ms`, the
        //    recorded build times are throughput-context measurements.
        let mut trace_keys: Vec<(ScalePreset, TopologyPreset, u64)> = Vec::new();
        for s in &self.scenarios {
            if !trace_keys.contains(&s.trace_key()) {
                trace_keys.push(s.trace_key());
            }
        }
        let seed = self.config.seed;
        let trace_workers = self.config.trace_workers.unwrap_or(self.config.workers);
        let built: Vec<(TraceBuild, Arc<SessionStore>)> =
            parallel_map(trace_keys.len(), self.config.workers, |i| {
                let key = trace_keys[i];
                let (preset, topology, _) = key;
                let scenario = self
                    .scenarios
                    .iter()
                    .find(|s| s.trace_key() == key)
                    .expect("key came from the scenario list");
                // lint:allow(no-wall-clock) wall-time telemetry, omitted from deterministic JSON
                let start = Instant::now();
                let trace = TraceGenerator::new(scenario.trace_config(), seed)
                    .workers(trace_workers)
                    .generate()
                    .expect("preset trace configs are valid");
                let generate_ms = start.elapsed().as_secs_f64() * 1e3;
                // lint:allow(no-wall-clock) trace-generation telemetry, omitted from deterministic JSON
                let start = Instant::now();
                let store = Arc::new(SessionStore::from_trace(&trace));
                let columnarize_ms = start.elapsed().as_secs_f64() * 1e3;
                let build = TraceBuild {
                    preset,
                    topology,
                    sessions: store.len() as u64,
                    users: store.population_len() as u64,
                    generate_ms,
                    columnarize_ms,
                };
                (build, store)
            });
        let (trace_builds, stores): (Vec<TraceBuild>, Vec<Arc<SessionStore>>) =
            built.into_iter().unzip();

        // 2. Simulate every scenario against its shared columnar store.
        let outcomes = parallel_map(self.scenarios.len(), self.config.workers, |i| {
            let scenario = self.scenarios[i];
            let key = scenario.trace_key();
            let store_idx = trace_keys
                .iter()
                .position(|&k| k == key)
                .expect("trace generated per key");
            let store = &stores[store_idx];
            let sim = Simulator::try_new(self.scenario_sim(&scenario))
                .expect("validated in SweepRunner::new");
            // lint:allow(no-wall-clock) scenario wall-time telemetry, omitted from deterministic JSON
            let start = Instant::now();
            let report = sim.simulate(store.as_ref());
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            outcome_from_report(
                scenario,
                store.population_len() as u64,
                store.len() as u64,
                &report,
                wall_ms,
            )
        });

        SweepReport {
            seed,
            workers: self.config.workers,
            trace_workers,
            trace_builds,
            outcomes,
        }
    }

    /// The segmented execution mode (see [`SweepConfig::segmented`]): for
    /// each distinct `(preset, topology)` trace, open a
    /// [`SegmentStream`](consume_local_trace::SegmentStream), give every
    /// scenario of that trace a persistent [`SegmentedRun`], and feed each
    /// generated day to all of them (fanned across `workers` threads over
    /// disjoint per-run chunks) before the segment is dropped. Peak trace
    /// memory is one day; outcomes are byte-identical to the shared-store
    /// mode.
    fn run_segment_stream(&self) -> SweepReport {
        let seed = self.config.seed;
        let trace_workers = self.config.trace_workers.unwrap_or(self.config.workers);
        let mut trace_keys: Vec<(ScalePreset, TopologyPreset, u64)> = Vec::new();
        for s in &self.scenarios {
            if !trace_keys.contains(&s.trace_key()) {
                trace_keys.push(s.trace_key());
            }
        }

        let mut trace_builds = Vec::with_capacity(trace_keys.len());
        let mut outcomes: Vec<Option<ScenarioOutcome>> = vec![None; self.scenarios.len()];
        // One scenario's in-flight state: its engine run plus the wall time
        // it has accumulated across segment feeds.
        struct InFlight {
            run: SegmentedRun,
            wall_ms: f64,
        }
        for key in trace_keys {
            let (preset, topology, _) = key;
            let scenario_ids: Vec<usize> = (0..self.scenarios.len())
                .filter(|&i| self.scenarios[i].trace_key() == key)
                .collect();
            let trace_config = self.scenarios[scenario_ids[0]].trace_config();
            let generator = TraceGenerator::new(trace_config, seed).workers(trace_workers);
            let mut stream = generator
                .segments()
                .expect("preset trace configs are valid");
            let horizon = stream.config().horizon_seconds();
            let users = stream.population().len();

            let mut flights: Vec<Option<InFlight>> = scenario_ids
                .iter()
                .map(|&i| {
                    let sim = Simulator::try_new(self.scenario_sim(&self.scenarios[i]))
                        .expect("validated in SweepRunner::new");
                    Some(InFlight {
                        run: sim.begin(horizon, users),
                        wall_ms: 0.0,
                    })
                })
                .collect();
            let offsets: Vec<usize> = (0..=flights.len()).collect();

            let mut stream_ms = 0.0;
            let mut sessions = 0u64;
            loop {
                // lint:allow(no-wall-clock) wall-time telemetry, omitted from deterministic JSON
                let start = Instant::now();
                let Some(segment) = stream.next_segment() else {
                    break;
                };
                stream_ms += start.elapsed().as_secs_f64() * 1e3;
                sessions += segment.len() as u64;
                parallel_map_slices(&mut flights, &offsets, self.config.workers, |_, chunk| {
                    let flight = chunk[0].as_mut().expect("taken only at finish");
                    // lint:allow(no-wall-clock) scenario wall-time telemetry, omitted from deterministic JSON
                    let start = Instant::now();
                    flight.run.push_segment(&segment);
                    flight.wall_ms += start.elapsed().as_secs_f64() * 1e3;
                });
                // `segment` drops here: only one day is ever resident.
            }
            let columnarize_ms = stream.columnarize_ms();
            let reports: Vec<(SimReport, f64)> =
                parallel_map_slices(&mut flights, &offsets, self.config.workers, |_, chunk| {
                    let flight = chunk[0].take().expect("each flight finishes once");
                    // lint:allow(no-wall-clock) scenario wall-time telemetry, omitted from deterministic JSON
                    let start = Instant::now();
                    let report = flight.run.finish();
                    (report, flight.wall_ms + start.elapsed().as_secs_f64() * 1e3)
                });

            trace_builds.push(TraceBuild {
                preset,
                topology,
                sessions,
                users: users as u64,
                // The stream interleaves synthesis+merge with per-day
                // columnarisation; report them in the same two buckets as
                // the shared-store mode.
                generate_ms: (stream_ms - columnarize_ms).max(0.0),
                columnarize_ms,
            });
            for (&i, (report, wall_ms)) in scenario_ids.iter().zip(&reports) {
                outcomes[i] = Some(outcome_from_report(
                    self.scenarios[i],
                    users as u64,
                    sessions,
                    report,
                    *wall_ms,
                ));
            }
        }

        SweepReport {
            seed,
            workers: self.config.workers,
            trace_workers,
            trace_builds,
            outcomes: outcomes
                .into_iter()
                .map(|o| o.expect("every scenario belongs to one trace key"))
                .collect(),
        }
    }
}

/// Reduces one scenario's [`SimReport`] to its sweep outcome — shared by
/// the shared-store and segmented execution modes.
fn outcome_from_report(
    scenario: Scenario,
    users: u64,
    sessions: u64,
    report: &SimReport,
    wall_ms: f64,
) -> ScenarioOutcome {
    ScenarioOutcome {
        scenario,
        users,
        sessions,
        swarms: report.swarms.len() as u64,
        demand_bytes: report.total.demand_bytes,
        server_bytes: report.total.server_bytes,
        cache_bytes: report.total.cache_bytes,
        preload_bytes: report.total.preload_bytes,
        peer_bytes_by_layer: report.total.peer_bytes_by_layer,
        offload_share: report.total.offload_share(),
        savings_valancius: report.total_savings(&EnergyParams::valancius()),
        savings_baliga: report.total_savings(&EnergyParams::baliga()),
        wall_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(workers: usize) -> SweepConfig {
        SweepConfig {
            grid: SweepGrid::ci_quick(),
            seed: 11,
            workers,
            sim_threads: 1,
            trace_workers: None,
            segmented: false,
            spill: true,
        }
    }

    #[test]
    fn segmented_mode_matches_shared_store_outcomes() {
        let shared = SweepRunner::new(quick_config(2)).unwrap().run();
        let mut config = quick_config(2);
        config.segmented = true;
        let segmented = SweepRunner::new(config).unwrap().run();
        // Identical deterministic documents: same scenarios, same bytes,
        // same savings — only wall-times (omitted here) may differ.
        assert_eq!(
            shared.to_json_deterministic().render(),
            segmented.to_json_deterministic().render()
        );
        // Build records still cover the one shared trace.
        assert_eq!(segmented.trace_builds.len(), 1);
        assert_eq!(
            segmented.trace_builds[0].sessions,
            shared.trace_builds[0].sessions
        );
        let (generate, columnarize, simulate) = segmented.phase_wall_ms();
        assert!(generate >= 0.0 && columnarize >= 0.0 && simulate > 0.0);
    }

    #[test]
    fn spill_toggle_never_changes_outcomes() {
        // The engine's swarm-state spill/compaction lifecycle is a pure
        // memory optimisation: the sweep's deterministic document must be
        // byte-identical with it on (default) and off, in both execution
        // modes.
        let spill_on = SweepRunner::new(quick_config(2)).unwrap().run();
        let mut config = quick_config(2);
        config.spill = false;
        let spill_off = SweepRunner::new(config).unwrap().run();
        assert_eq!(
            spill_on.to_json_deterministic().render(),
            spill_off.to_json_deterministic().render()
        );
        let mut config = quick_config(2);
        config.spill = false;
        config.segmented = true;
        let segmented_off = SweepRunner::new(config).unwrap().run();
        assert_eq!(
            spill_on.to_json_deterministic().render(),
            segmented_off.to_json_deterministic().render()
        );
    }

    #[test]
    fn grid_expansion_counts() {
        let grid = SweepGrid::ci_quick();
        assert_eq!(grid.len(), 8);
        assert_eq!(grid.scenarios().len(), 8);
        assert!(!grid.is_empty());
        let mut empty = grid;
        empty.matchers.clear();
        assert!(empty.is_empty());
        assert_eq!(
            SweepGrid::ablations(ScalePreset::Smoke).len(),
            2 * 4 * 3 * 2
        );
    }

    #[test]
    fn empty_grid_rejected() {
        let mut config = quick_config(2);
        config.grid.policies.clear();
        assert_eq!(SweepRunner::new(config).unwrap_err(), SweepError::EmptyGrid);
        let mut config = quick_config(2);
        config.workers = 0;
        assert_eq!(
            SweepRunner::new(config).unwrap_err(),
            SweepError::ZeroWorkers
        );
    }

    #[test]
    fn invalid_axis_value_is_typed() {
        let mut config = quick_config(2);
        config.grid.upload_ratios = vec![0.0];
        let err = SweepRunner::new(config).unwrap_err();
        match err {
            SweepError::Sim {
                ref scenario,
                source: SimConfigError::BadUploadRatio(r),
            } => {
                assert_eq!(r, 0.0);
                assert!(scenario.contains("smoke/london5"));
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains("upload ratio"));
    }

    #[test]
    fn runs_and_orders_outcomes_by_grid() {
        let runner = SweepRunner::new(quick_config(4)).unwrap();
        let report = runner.run();
        assert_eq!(report.outcomes.len(), 8);
        for (scenario, outcome) in runner.scenarios().iter().zip(&report.outcomes) {
            assert_eq!(*scenario, outcome.scenario);
            assert!(outcome.demand_bytes > 0);
            assert_eq!(
                outcome.demand_bytes,
                outcome.server_bytes
                    + outcome.cache_bytes
                    + outcome.preload_bytes
                    + outcome.peer_bytes_by_layer.iter().sum::<u64>()
            );
        }
        // The content-only policy merges swarms, so it offloads at least as
        // much as the paper policy under the same matcher and window.
        let by_id = |needle: &str| {
            report
                .outcomes
                .iter()
                .find(|o| o.scenario.id().contains(needle))
                .expect("scenario present")
        };
        let paper = by_id("hierarchical/isp+bitrate/dt10");
        let merged = by_id("hierarchical/content/dt10");
        assert!(merged.offload_share >= paper.offload_share);
        let summary = report.summary().unwrap();
        assert_eq!(summary.scenarios, 8);
    }

    #[test]
    fn json_contains_every_scenario_and_schema() {
        let report = SweepRunner::new(quick_config(4)).unwrap().run();
        let json = report.to_json().render();
        assert!(json.starts_with(r#"{"schema":"consume-local/sweep-v1","seed":11"#));
        for outcome in &report.outcomes {
            assert!(json.contains(&outcome.scenario.id()));
        }
        assert!(json.contains("\"wall_ms\""));
        assert!(json.contains("\"workers\":4"));
        let det = report.to_json_deterministic().render();
        assert!(!det.contains("wall_ms"));
        assert!(!det.contains("workers"));
    }

    #[test]
    fn trace_builds_and_phase_timings_surface_in_json() {
        let mut config = quick_config(2);
        config.trace_workers = Some(2);
        let report = SweepRunner::new(config).unwrap().run();
        // One shared build for the single (preset, topology) of ci_quick.
        assert_eq!(report.trace_builds.len(), 1);
        let build = &report.trace_builds[0];
        assert_eq!(build.preset, ScalePreset::Smoke);
        assert_eq!(build.sessions, report.outcomes[0].sessions);
        assert_eq!(build.users, report.outcomes[0].users);
        assert!(build.generate_ms >= 0.0 && build.columnarize_ms >= 0.0);
        let (generate, columnarize, simulate) = report.phase_wall_ms();
        assert_eq!(generate, build.generate_ms);
        assert_eq!(columnarize, build.columnarize_ms);
        assert!(simulate > 0.0);
        let json = report.to_json().render();
        assert!(json.contains("\"phase_wall_ms\":{\"generate\":"));
        assert!(json.contains("\"trace_builds\":[{\"preset\":\"smoke\""));
        assert!(json.contains("\"trace_workers\":2"));
        let det = report.to_json_deterministic().render();
        assert!(!det.contains("phase_wall_ms"));
        assert!(!det.contains("trace_builds"));
        assert!(!det.contains("trace_workers"));
    }

    #[test]
    fn zero_trace_workers_rejected() {
        let mut config = quick_config(2);
        config.trace_workers = Some(0);
        assert_eq!(
            SweepRunner::new(config).unwrap_err(),
            SweepError::ZeroWorkers
        );
    }

    /// A minimal grid exercising both robustness axes: one scenario shape
    /// across churn off/on and full/partial cooperation (4 scenarios,
    /// 2 distinct traces).
    fn robustness_config() -> SweepConfig {
        let mut grid = SweepGrid::paper_point();
        grid.churn_rates = vec![0.0, 2.0];
        grid.cooperation = vec![1.0, 0.7];
        SweepConfig {
            grid,
            seed: 11,
            workers: 2,
            sim_threads: 1,
            trace_workers: None,
            segmented: false,
            spill: true,
        }
    }

    #[test]
    fn churn_axis_expands_ids_and_dedups_traces_by_rate() {
        let runner = SweepRunner::new(robustness_config()).unwrap();
        let ids: Vec<String> = runner.scenarios().iter().map(|s| s.id()).collect();
        assert_eq!(runner.scenarios().len(), 4);
        // Inert axis values leave the id untouched; active ones suffix it.
        assert!(ids[0].ends_with("/dt10/q1"), "{}", ids[0]);
        assert!(ids[1].ends_with("/q1/coop0.7"), "{}", ids[1]);
        assert!(ids[2].ends_with("/q1/churn2"), "{}", ids[2]);
        assert!(ids[3].ends_with("/q1/churn2/coop0.7"), "{}", ids[3]);
        let report = runner.run();
        // Two distinct traces: churn-off and churn-2, each shared by both
        // cooperation levels.
        assert_eq!(report.trace_builds.len(), 2);
        // Churn fragments sessions: the churned trace has more records.
        assert!(report.trace_builds[1].sessions > report.trace_builds[0].sessions);
        // Degradation is monotone on both axes for this point: churn and
        // defection each lose offload.
        let offload = |i: usize| report.outcomes[i].offload_share;
        assert!(offload(1) < offload(0), "defection must lose offload");
        assert!(offload(2) < offload(0), "churn must lose offload");
        // JSON carries the axis fields exactly when the axis is in use.
        let json = report.to_json_deterministic().render();
        assert!(json.contains("\"churn_rate\":2"));
        assert!(json.contains("\"cooperation\":0.7"));
        let plain = SweepRunner::new(quick_config(2)).unwrap().run();
        let plain_json = plain.to_json_deterministic().render();
        assert!(!plain_json.contains("churn_rate"));
        assert!(!plain_json.contains("\"cooperation\""));
    }

    #[test]
    fn segmented_mode_matches_shared_store_with_churn() {
        let shared = SweepRunner::new(robustness_config()).unwrap().run();
        let mut config = robustness_config();
        config.segmented = true;
        let segmented = SweepRunner::new(config).unwrap().run();
        assert_eq!(
            shared.to_json_deterministic().render(),
            segmented.to_json_deterministic().render()
        );
    }

    #[test]
    fn invalid_churn_axis_value_is_typed() {
        let mut config = robustness_config();
        config.grid.churn_rates = vec![-1.0];
        let err = SweepRunner::new(config).unwrap_err();
        assert!(
            matches!(err, SweepError::Trace { .. }),
            "unexpected error {err:?}"
        );
        assert!(err.to_string().contains("churn"));
        use std::error::Error;
        assert!(err.source().is_some());

        let mut config = robustness_config();
        config.grid.cooperation = vec![0.0];
        let err = SweepRunner::new(config).unwrap_err();
        assert!(
            matches!(
                err,
                SweepError::Sim {
                    source: SimConfigError::Churn(_),
                    ..
                }
            ),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn summary_excludes_unmeasured_scenarios() {
        let mut report = SweepRunner::new(quick_config(4)).unwrap().run();
        let full = report.summary().unwrap();
        assert_eq!(full.scenarios, report.outcomes.len());
        // Blank one scenario out as if its trace had produced no demand:
        // the summary must shrink, not count it as a measured 0 % savings.
        let lowest_id = report.outcomes[full.worst_savings_index].scenario.id();
        report.outcomes[full.worst_savings_index].savings_valancius = None;
        report.outcomes[full.worst_savings_index].demand_bytes = 0;
        let reduced = report.summary().unwrap();
        assert_eq!(reduced.scenarios, report.outcomes.len() - 1);
        assert!(reduced.savings.min > 0.0, "no phantom 0% sample");
        let json = report.to_json().render();
        assert!(json.contains(&format!("\"measured_scenarios\":{}", reduced.scenarios)));
        let worst = &report.outcomes[report.measured().1[reduced.worst_savings_index]];
        assert_ne!(
            worst.scenario.id(),
            lowest_id,
            "extrema re-derived over measured set"
        );
        assert!(worst.savings_valancius.is_some());
    }
}
