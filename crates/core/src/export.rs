//! CSV and JSON export of figure and sweep data.
//!
//! Every figure function returns plain data series; these helpers serialise
//! them so results can be plotted with external tooling (gnuplot, matplotlib)
//! exactly like the paper's figures. The [`json`] submodule is the
//! counterpart for the sweep runner's machine-readable results (the
//! workspace's serde is an offline no-op shim, so JSON is hand-serialised
//! here, just like the trace crate's CSV codec).

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Serialises one `(x, y)` series with a header line.
///
/// # Example
///
/// ```
/// let csv = consume_local::export::series_csv("capacity", "savings",
///     &[(1.0, 0.1), (10.0, 0.3)]);
/// assert_eq!(csv.lines().count(), 3);
/// assert!(csv.starts_with("capacity,savings"));
/// ```
pub fn series_csv(x_name: &str, y_name: &str, series: &[(f64, f64)]) -> String {
    let mut out = format!("{x_name},{y_name}\n");
    for (x, y) in series {
        let _ = writeln!(out, "{x},{y}");
    }
    out
}

/// Serialises labelled columns of equal length: `x` plus one named column per
/// series.
///
/// # Panics
///
/// Panics if the series have different lengths from `x`.
pub fn columns_csv(x_name: &str, x: &[f64], columns: &[(&str, Vec<f64>)]) -> String {
    for (name, col) in columns {
        assert_eq!(col.len(), x.len(), "column `{name}` length mismatch");
    }
    let mut out = String::from(x_name);
    for (name, _) in columns {
        let _ = write!(out, ",{name}");
    }
    out.push('\n');
    for (i, xv) in x.iter().enumerate() {
        let _ = write!(out, "{xv}");
        for (_, col) in columns {
            let _ = write!(out, ",{}", col[i]);
        }
        out.push('\n');
    }
    out
}

/// Writes a CSV string to a file, creating parent directories.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(path: impl AsRef<Path>, csv: &str) -> io::Result<()> {
    write_text(path, csv)
}

/// Writes any text artefact (CSV, JSON) to a file, creating parent
/// directories.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_text(path: impl AsRef<Path>, content: &str) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, content)
}

pub mod json {
    //! A minimal JSON document model with deterministic rendering.
    //!
    //! Field order is preserved exactly as inserted and floats render via
    //! Rust's shortest-roundtrip formatting, so two identical sweeps produce
    //! byte-identical documents — the property the determinism suite pins.

    use std::fmt::Write as _;

    /// A JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum JsonValue {
        /// `null` (also the rendering of non-finite numbers).
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// An integer (kept exact; no float round-trip).
        Int(u64),
        /// A float; non-finite values render as `null`.
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<JsonValue>),
        /// An object with insertion-ordered fields.
        Obj(Vec<(String, JsonValue)>),
    }

    impl From<bool> for JsonValue {
        fn from(v: bool) -> Self {
            JsonValue::Bool(v)
        }
    }
    impl From<u64> for JsonValue {
        fn from(v: u64) -> Self {
            JsonValue::Int(v)
        }
    }
    impl From<u32> for JsonValue {
        fn from(v: u32) -> Self {
            JsonValue::Int(v.into())
        }
    }
    impl From<usize> for JsonValue {
        fn from(v: usize) -> Self {
            JsonValue::Int(v as u64)
        }
    }
    impl From<f64> for JsonValue {
        fn from(v: f64) -> Self {
            JsonValue::Num(v)
        }
    }
    impl From<&str> for JsonValue {
        fn from(v: &str) -> Self {
            JsonValue::Str(v.to_string())
        }
    }
    impl From<String> for JsonValue {
        fn from(v: String) -> Self {
            JsonValue::Str(v)
        }
    }
    impl From<Vec<JsonValue>> for JsonValue {
        fn from(v: Vec<JsonValue>) -> Self {
            JsonValue::Arr(v)
        }
    }

    impl JsonValue {
        /// An empty object.
        pub fn object() -> Self {
            JsonValue::Obj(Vec::new())
        }

        /// Appends a field to an object (builder style).
        ///
        /// # Panics
        ///
        /// Panics when `self` is not an object.
        pub fn field(mut self, name: &str, value: impl Into<JsonValue>) -> Self {
            match &mut self {
                JsonValue::Obj(fields) => fields.push((name.to_string(), value.into())),
                _ => panic!("field() requires a JSON object"),
            }
            self
        }

        /// Renders the value as a compact JSON document.
        pub fn render(&self) -> String {
            let mut out = String::new();
            self.write(&mut out);
            out
        }

        fn write(&self, out: &mut String) {
            match self {
                JsonValue::Null => out.push_str("null"),
                JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                JsonValue::Int(i) => {
                    let _ = write!(out, "{i}");
                }
                JsonValue::Num(x) if !x.is_finite() => out.push_str("null"),
                JsonValue::Num(x) => {
                    let _ = write!(out, "{x}");
                    // `{}` prints integral floats without a decimal point;
                    // keep them typed as numbers-with-fraction for parsers
                    // that distinguish int from float.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        out.push_str(".0");
                    }
                }
                JsonValue::Str(s) => write_escaped(out, s),
                JsonValue::Arr(items) => {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        item.write(out);
                    }
                    out.push(']');
                }
                JsonValue::Obj(fields) => {
                    out.push('{');
                    for (i, (name, value)) in fields.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        write_escaped(out, name);
                        out.push(':');
                        value.write(out);
                    }
                    out.push('}');
                }
            }
        }
    }

    fn write_escaped(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn renders_nested_document() {
            let doc = JsonValue::object()
                .field("name", "sweep")
                .field("n", 3u64)
                .field("ok", true)
                .field("ratio", 0.5)
                .field("items", vec![JsonValue::Int(1), JsonValue::Null]);
            assert_eq!(
                doc.render(),
                r#"{"name":"sweep","n":3,"ok":true,"ratio":0.5,"items":[1,null]}"#
            );
        }

        #[test]
        fn escapes_strings_and_hides_nonfinite() {
            let doc = JsonValue::object()
                .field("s", "a\"b\\c\nd\u{1}")
                .field("nan", f64::NAN)
                .field("int_float", 2.0);
            assert_eq!(
                doc.render(),
                r#"{"s":"a\"b\\c\nd\u0001","nan":null,"int_float":2.0}"#
            );
        }

        #[test]
        #[should_panic(expected = "requires a JSON object")]
        fn field_on_non_object_panics() {
            let _ = JsonValue::Null.field("x", 1u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_round_shape() {
        let csv = series_csv("x", "y", &[(0.5, 1.5)]);
        assert_eq!(csv, "x,y\n0.5,1.5\n");
    }

    #[test]
    fn columns_shape() {
        let csv = columns_csv(
            "c",
            &[1.0, 2.0],
            &[("a", vec![0.1, 0.2]), ("b", vec![0.9, 0.8])],
        );
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "c,a,b");
        assert_eq!(lines[1], "1,0.1,0.9");
        assert_eq!(lines[2], "2,0.2,0.8");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn columns_validate_lengths() {
        let _ = columns_csv("c", &[1.0], &[("a", vec![])]);
    }

    #[test]
    fn write_creates_dirs() {
        let dir = std::env::temp_dir().join("consume-local-test-export");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/file.csv");
        write_csv(&path, "a,b\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
