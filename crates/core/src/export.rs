//! CSV and JSON export of figure and sweep data.
//!
//! Every figure function returns plain data series; these helpers serialise
//! them so results can be plotted with external tooling (gnuplot, matplotlib)
//! exactly like the paper's figures. The [`json`] submodule is the
//! counterpart for the sweep runner's machine-readable results (the
//! workspace's serde is an offline no-op shim, so JSON is hand-serialised
//! here, just like the trace crate's CSV codec).

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Serialises one `(x, y)` series with a header line.
///
/// # Example
///
/// ```
/// let csv = consume_local::export::series_csv("capacity", "savings",
///     &[(1.0, 0.1), (10.0, 0.3)]);
/// assert_eq!(csv.lines().count(), 3);
/// assert!(csv.starts_with("capacity,savings"));
/// ```
pub fn series_csv(x_name: &str, y_name: &str, series: &[(f64, f64)]) -> String {
    let mut out = format!("{x_name},{y_name}\n");
    for (x, y) in series {
        let _ = writeln!(out, "{x},{y}");
    }
    out
}

/// Serialises labelled columns of equal length: `x` plus one named column per
/// series.
///
/// # Panics
///
/// Panics if the series have different lengths from `x`.
pub fn columns_csv(x_name: &str, x: &[f64], columns: &[(&str, Vec<f64>)]) -> String {
    for (name, col) in columns {
        assert_eq!(col.len(), x.len(), "column `{name}` length mismatch");
    }
    let mut out = String::from(x_name);
    for (name, _) in columns {
        let _ = write!(out, ",{name}");
    }
    out.push('\n');
    for (i, xv) in x.iter().enumerate() {
        let _ = write!(out, "{xv}");
        for (_, col) in columns {
            let _ = write!(out, ",{}", col[i]);
        }
        out.push('\n');
    }
    out
}

/// Writes a CSV string to a file, creating parent directories.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(path: impl AsRef<Path>, csv: &str) -> io::Result<()> {
    write_text(path, csv)
}

/// Writes any text artefact (CSV, JSON) to a file, creating parent
/// directories.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_text(path: impl AsRef<Path>, content: &str) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, content)
}

pub mod json {
    //! A minimal JSON document model with deterministic rendering.
    //!
    //! Field order is preserved exactly as inserted and floats render via
    //! Rust's shortest-roundtrip formatting, so two identical sweeps produce
    //! byte-identical documents — the property the determinism suite pins.

    use std::fmt::Write as _;

    /// A JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum JsonValue {
        /// `null` (also the rendering of non-finite numbers).
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// An integer (kept exact; no float round-trip).
        Int(u64),
        /// A float; non-finite values render as `null`.
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<JsonValue>),
        /// An object with insertion-ordered fields.
        Obj(Vec<(String, JsonValue)>),
    }

    impl From<bool> for JsonValue {
        fn from(v: bool) -> Self {
            JsonValue::Bool(v)
        }
    }
    impl From<u64> for JsonValue {
        fn from(v: u64) -> Self {
            JsonValue::Int(v)
        }
    }
    impl From<u32> for JsonValue {
        fn from(v: u32) -> Self {
            JsonValue::Int(v.into())
        }
    }
    impl From<usize> for JsonValue {
        fn from(v: usize) -> Self {
            JsonValue::Int(v as u64)
        }
    }
    impl From<f64> for JsonValue {
        fn from(v: f64) -> Self {
            JsonValue::Num(v)
        }
    }
    impl From<&str> for JsonValue {
        fn from(v: &str) -> Self {
            JsonValue::Str(v.to_string())
        }
    }
    impl From<String> for JsonValue {
        fn from(v: String) -> Self {
            JsonValue::Str(v)
        }
    }
    impl From<Vec<JsonValue>> for JsonValue {
        fn from(v: Vec<JsonValue>) -> Self {
            JsonValue::Arr(v)
        }
    }

    impl JsonValue {
        /// An empty object.
        pub fn object() -> Self {
            JsonValue::Obj(Vec::new())
        }

        /// Appends a field to an object (builder style).
        ///
        /// # Panics
        ///
        /// Panics when `self` is not an object.
        pub fn field(mut self, name: &str, value: impl Into<JsonValue>) -> Self {
            match &mut self {
                JsonValue::Obj(fields) => fields.push((name.to_string(), value.into())),
                _ => panic!("field() requires a JSON object"),
            }
            self
        }

        /// Renders the value as a compact JSON document.
        pub fn render(&self) -> String {
            let mut out = String::new();
            self.write(&mut out);
            out
        }

        fn write(&self, out: &mut String) {
            match self {
                JsonValue::Null => out.push_str("null"),
                JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                JsonValue::Int(i) => {
                    let _ = write!(out, "{i}");
                }
                JsonValue::Num(x) if !x.is_finite() => out.push_str("null"),
                JsonValue::Num(x) => {
                    let _ = write!(out, "{x}");
                    // `{}` prints integral floats without a decimal point;
                    // keep them typed as numbers-with-fraction for parsers
                    // that distinguish int from float.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        out.push_str(".0");
                    }
                }
                JsonValue::Str(s) => write_escaped(out, s),
                JsonValue::Arr(items) => {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        item.write(out);
                    }
                    out.push(']');
                }
                JsonValue::Obj(fields) => {
                    out.push('{');
                    for (i, (name, value)) in fields.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        write_escaped(out, name);
                        out.push(':');
                        value.write(out);
                    }
                    out.push('}');
                }
            }
        }
    }

    impl JsonValue {
        /// Looks a field up in an object (first match; `None` on non-objects).
        pub fn get(&self, name: &str) -> Option<&JsonValue> {
            match self {
                JsonValue::Obj(fields) => fields.iter().find(|(n, _)| n == name).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The numeric value of an `Int` or `Num` node.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                JsonValue::Int(i) => Some(*i as f64),
                JsonValue::Num(x) => Some(*x),
                _ => None,
            }
        }

        /// The string value of a `Str` node.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                JsonValue::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The elements of an `Arr` node.
        pub fn as_array(&self) -> Option<&[JsonValue]> {
            match self {
                JsonValue::Arr(items) => Some(items),
                _ => None,
            }
        }

        /// Parses a JSON document (the inverse of [`JsonValue::render`]).
        ///
        /// A by-hand recursive-descent parser matching the renderer's
        /// dialect: numbers parse as `Int` when they are non-negative
        /// integers without fraction/exponent, `Num` otherwise; `\uXXXX`
        /// escapes (incl. surrogate pairs) are decoded.
        ///
        /// # Errors
        ///
        /// Returns the byte offset and a short message for malformed input.
        pub fn parse(text: &str) -> Result<JsonValue, JsonParseError> {
            let mut p = Parser {
                bytes: text.as_bytes(),
                pos: 0,
            };
            p.skip_ws();
            let value = p.value()?;
            p.skip_ws();
            if p.pos != p.bytes.len() {
                return Err(p.err("trailing characters after the document"));
            }
            Ok(value)
        }
    }

    /// Error from [`JsonValue::parse`]: position plus message.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct JsonParseError {
        /// Byte offset of the error in the input.
        pub offset: usize,
        /// What went wrong.
        pub message: &'static str,
    }

    impl std::fmt::Display for JsonParseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
        }
    }

    impl std::error::Error for JsonParseError {}

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn err(&self, message: &'static str) -> JsonParseError {
            JsonParseError {
                offset: self.pos,
                message,
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn eat(&mut self, byte: u8, message: &'static str) -> Result<(), JsonParseError> {
            if self.peek() == Some(byte) {
                self.pos += 1;
                Ok(())
            } else {
                Err(self.err(message))
            }
        }

        fn literal(&mut self, word: &str, message: &'static str) -> Result<(), JsonParseError> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(())
            } else {
                Err(self.err(message))
            }
        }

        fn value(&mut self) -> Result<JsonValue, JsonParseError> {
            match self.peek() {
                Some(b'n') => {
                    self.literal("null", "expected `null`")?;
                    Ok(JsonValue::Null)
                }
                Some(b't') => {
                    self.literal("true", "expected `true`")?;
                    Ok(JsonValue::Bool(true))
                }
                Some(b'f') => {
                    self.literal("false", "expected `false`")?;
                    Ok(JsonValue::Bool(false))
                }
                Some(b'"') => Ok(JsonValue::Str(self.string()?)),
                Some(b'[') => self.array(),
                Some(b'{') => self.object(),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                _ => Err(self.err("expected a JSON value")),
            }
        }

        fn array(&mut self) -> Result<JsonValue, JsonParseError> {
            self.eat(b'[', "expected `[`")?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(self.err("expected `,` or `]`")),
                }
            }
        }

        fn object(&mut self) -> Result<JsonValue, JsonParseError> {
            self.eat(b'{', "expected `{`")?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            loop {
                self.skip_ws();
                let name = self.string()?;
                self.skip_ws();
                self.eat(b':', "expected `:` after a field name")?;
                self.skip_ws();
                fields.push((name, self.value()?));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(JsonValue::Obj(fields));
                    }
                    _ => return Err(self.err("expected `,` or `}`")),
                }
            }
        }

        fn string(&mut self) -> Result<String, JsonParseError> {
            self.eat(b'"', "expected `\"`")?;
            let mut out = String::new();
            loop {
                let Some(c) = self.peek() else {
                    return Err(self.err("unterminated string"));
                };
                self.pos += 1;
                match c {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let Some(esc) = self.peek() else {
                            return Err(self.err("unterminated escape"));
                        };
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'u' => {
                                let hi = self.hex4()?;
                                let code = if (0xD800..0xDC00).contains(&hi) {
                                    // Surrogate pair: a second \uXXXX must follow.
                                    self.literal("\\u", "expected a low surrogate")?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    hi
                                };
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| self.err("invalid unicode escape"))?,
                                );
                            }
                            _ => return Err(self.err("unknown escape")),
                        }
                    }
                    _ if c < 0x20 => return Err(self.err("raw control character in string")),
                    _ => {
                        // Re-decode multi-byte UTF-8 from the source slice.
                        let start = self.pos - 1;
                        let len = utf8_len(c);
                        self.pos = start + len;
                        let chunk = self
                            .bytes
                            .get(start..self.pos)
                            .ok_or_else(|| self.err("truncated UTF-8 sequence"))?;
                        out.push_str(
                            std::str::from_utf8(chunk)
                                .map_err(|_| self.err("invalid UTF-8 sequence"))?,
                        );
                    }
                }
            }
        }

        fn hex4(&mut self) -> Result<u32, JsonParseError> {
            let chunk = self
                .bytes
                .get(self.pos..self.pos + 4)
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid \\u escape"))?;
            let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
            self.pos += 4;
            Ok(v)
        }

        fn number(&mut self) -> Result<JsonValue, JsonParseError> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            let mut integral = true;
            if self.peek() == Some(b'.') {
                integral = false;
                self.pos += 1;
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            if matches!(self.peek(), Some(b'e' | b'E')) {
                integral = false;
                self.pos += 1;
                if matches!(self.peek(), Some(b'+' | b'-')) {
                    self.pos += 1;
                }
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            let text =
                std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
            if integral {
                if let Ok(i) = text.parse::<u64>() {
                    return Ok(JsonValue::Int(i));
                }
            }
            text.parse::<f64>()
                .map(JsonValue::Num)
                .map_err(|_| self.err("malformed number"))
        }
    }

    /// Length in bytes of the UTF-8 sequence starting with `first`.
    fn utf8_len(first: u8) -> usize {
        match first {
            0x00..=0x7f => 1,
            0xc0..=0xdf => 2,
            0xe0..=0xef => 3,
            _ => 4,
        }
    }

    fn write_escaped(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn renders_nested_document() {
            let doc = JsonValue::object()
                .field("name", "sweep")
                .field("n", 3u64)
                .field("ok", true)
                .field("ratio", 0.5)
                .field("items", vec![JsonValue::Int(1), JsonValue::Null]);
            assert_eq!(
                doc.render(),
                r#"{"name":"sweep","n":3,"ok":true,"ratio":0.5,"items":[1,null]}"#
            );
        }

        #[test]
        fn escapes_strings_and_hides_nonfinite() {
            let doc = JsonValue::object()
                .field("s", "a\"b\\c\nd\u{1}")
                .field("nan", f64::NAN)
                .field("int_float", 2.0);
            assert_eq!(
                doc.render(),
                r#"{"s":"a\"b\\c\nd\u0001","nan":null,"int_float":2.0}"#
            );
        }

        #[test]
        #[should_panic(expected = "requires a JSON object")]
        fn field_on_non_object_panics() {
            let _ = JsonValue::Null.field("x", 1u64);
        }

        #[test]
        fn parse_round_trips_rendered_documents() {
            let doc = JsonValue::object()
                .field("name", "sweep \"q\"\n")
                .field("n", 3u64)
                .field("neg", -2.5)
                .field("ok", true)
                .field("nothing", JsonValue::Null)
                .field("ratio", 0.5)
                .field(
                    "items",
                    vec![JsonValue::Int(1), JsonValue::Num(2.0), JsonValue::Null],
                )
                .field("nested", JsonValue::object().field("x", 7u64));
            let text = doc.render();
            let parsed = JsonValue::parse(&text).unwrap();
            assert_eq!(parsed, doc);
            // And the round trip is byte-stable.
            assert_eq!(parsed.render(), text);
        }

        #[test]
        fn parse_accepts_whitespace_and_escapes() {
            let parsed = JsonValue::parse(
                " { \"a\" : [ 1 , 2.5e1 , \"x\\u0041\\ud83d\\ude00\" ] , \"b\" : { } } ",
            )
            .unwrap();
            let arr = parsed.get("a").unwrap().as_array().unwrap();
            assert_eq!(arr[0], JsonValue::Int(1));
            assert_eq!(arr[1], JsonValue::Num(25.0));
            assert_eq!(arr[2].as_str().unwrap(), "xA😀");
            assert_eq!(parsed.get("b").unwrap(), &JsonValue::object());
            assert!(parsed.get("missing").is_none());
        }

        #[test]
        fn parse_rejects_malformed_documents() {
            for bad in [
                "",
                "{",
                "[1,]",
                "{\"a\":}",
                "{\"a\":1,}",
                "nul",
                "\"unterminated",
                "1 2",
                "{\"a\" 1}",
                "[\"\\q\"]",
            ] {
                let err = JsonValue::parse(bad).unwrap_err();
                assert!(!err.to_string().is_empty(), "{bad:?} must not parse");
            }
        }

        #[test]
        fn accessors_select_types() {
            assert_eq!(JsonValue::Int(4).as_f64(), Some(4.0));
            assert_eq!(JsonValue::Num(0.5).as_f64(), Some(0.5));
            assert_eq!(JsonValue::Str("x".into()).as_f64(), None);
            assert_eq!(JsonValue::Null.as_str(), None);
            assert!(JsonValue::Null.as_array().is_none());
            assert!(JsonValue::Null.get("x").is_none());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_round_shape() {
        let csv = series_csv("x", "y", &[(0.5, 1.5)]);
        assert_eq!(csv, "x,y\n0.5,1.5\n");
    }

    #[test]
    fn columns_shape() {
        let csv = columns_csv(
            "c",
            &[1.0, 2.0],
            &[("a", vec![0.1, 0.2]), ("b", vec![0.9, 0.8])],
        );
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "c,a,b");
        assert_eq!(lines[1], "1,0.1,0.9");
        assert_eq!(lines[2], "2,0.2,0.8");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn columns_validate_lengths() {
        let _ = columns_csv("c", &[1.0], &[("a", vec![])]);
    }

    #[test]
    fn write_creates_dirs() {
        let dir = std::env::temp_dir().join("consume-local-test-export");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/file.csv");
        write_csv(&path, "a,b\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
