//! CSV export of figure data.
//!
//! Every figure function returns plain data series; these helpers serialise
//! them so results can be plotted with external tooling (gnuplot, matplotlib)
//! exactly like the paper's figures.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Serialises one `(x, y)` series with a header line.
///
/// # Example
///
/// ```
/// let csv = consume_local::export::series_csv("capacity", "savings",
///     &[(1.0, 0.1), (10.0, 0.3)]);
/// assert_eq!(csv.lines().count(), 3);
/// assert!(csv.starts_with("capacity,savings"));
/// ```
pub fn series_csv(x_name: &str, y_name: &str, series: &[(f64, f64)]) -> String {
    let mut out = format!("{x_name},{y_name}\n");
    for (x, y) in series {
        let _ = writeln!(out, "{x},{y}");
    }
    out
}

/// Serialises labelled columns of equal length: `x` plus one named column per
/// series.
///
/// # Panics
///
/// Panics if the series have different lengths from `x`.
pub fn columns_csv(x_name: &str, x: &[f64], columns: &[(&str, Vec<f64>)]) -> String {
    for (name, col) in columns {
        assert_eq!(col.len(), x.len(), "column `{name}` length mismatch");
    }
    let mut out = String::from(x_name);
    for (name, _) in columns {
        let _ = write!(out, ",{name}");
    }
    out.push('\n');
    for (i, xv) in x.iter().enumerate() {
        let _ = write!(out, "{xv}");
        for (_, col) in columns {
            let _ = write!(out, ",{}", col[i]);
        }
        out.push('\n');
    }
    out
}

/// Writes a CSV string to a file, creating parent directories.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(path: impl AsRef<Path>, csv: &str) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, csv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_round_shape() {
        let csv = series_csv("x", "y", &[(0.5, 1.5)]);
        assert_eq!(csv, "x,y\n0.5,1.5\n");
    }

    #[test]
    fn columns_shape() {
        let csv = columns_csv(
            "c",
            &[1.0, 2.0],
            &[("a", vec![0.1, 0.2]), ("b", vec![0.9, 0.8])],
        );
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "c,a,b");
        assert_eq!(lines[1], "1,0.1,0.9");
        assert_eq!(lines[2], "2,0.2,0.8");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn columns_validate_lengths() {
        let _ = columns_csv("c", &[1.0], &[("a", vec![])]);
    }

    #[test]
    fn write_creates_dirs() {
        let dir = std::env::temp_dir().join("consume-local-test-export");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/file.csv");
        write_csv(&path, "a,b\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
