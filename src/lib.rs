//! Thin root package for the `consume-local` workspace.
//!
//! Hosts the runnable examples under `examples/` and the cross-crate
//! integration tests under `tests/`. All functionality lives in the workspace
//! crates and is re-exported through [`consume_local`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use consume_local;
